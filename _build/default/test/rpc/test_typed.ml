(* The typed stub layer: declared signatures become ordinary typed
   OCaml functions on both sides of the wire. *)

module Engine = Sim.Engine
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Runtime = Rpc.Runtime
module Binder = Rpc.Binder
module Typed = Rpc.Typed
module World = Workload.World
open Rpc.Typed

(* PROCEDURE Add(x, y: INTEGER; VAR OUT sum: INTEGER) *)
let add = procedure "add" (param "x" int @-> param "y" int @-> returning (out1 (out "sum" int)))

(* PROCEDURE Stats(xs: SEQUENCE OF LONGREAL;
                   VAR OUT mean: LONGREAL; VAR OUT count: INTEGER) *)
let stats =
  procedure "stats"
    (param "xs" (seq real ~max:64)
    @-> returning (out2 (out "mean" real) (out "count" int)))

(* PROCEDURE Describe(who: Text.T; score: INTEGER16; ok: BOOLEAN;
                      VAR OUT verdict: Text.T) *)
let describe =
  procedure "describe"
    (param "who" (text 32) @-> param "score" int16 @-> param "ok" bool
    @-> returning (out1 (out "verdict" (text 128))))

(* PROCEDURE Checksum(data: ARRAY OF CHAR; VAR OUT digest: INTEGER;
                      VAR OUT echo: ARRAY OF CHAR) — bulk VAR IN + VAR OUT *)
let checksum_proc =
  procedure "checksum"
    (param "data" (bytes ~max:4000)
    @-> returning (out2 (out "digest" int) (out "echo" (bytes ~max:4000))))

(* PROCEDURE Nothing() *)
let nothing = procedure "nothing" (noarg (returning out0))

(* PROCEDURE Midpoint(a, b: RECORD x, y: LONGREAL END;
                      VAR OUT mid: RECORD x, y: LONGREAL END;
                      VAR OUT quadrant: RECORD n: INTEGER; name: Text.T END) *)
let point = pair real real

let midpoint =
  procedure "midpoint"
    (param "a" point @-> param "b" point
    @-> returning (out2 (out "mid" point) (out "quadrant" (pair int (text 16)))))

let math_intf =
  interface ~name:"TypedMath" ~version:2
    [ P add; P stats; P describe; P checksum_proc; P nothing; P midpoint ]

let side_effects = ref 0

let implementations =
  Typed.impls math_intf
    [
      I (add, fun x y -> x + y);
      I
        ( stats,
          fun xs ->
            let n = List.length xs in
            ((if n = 0 then 0. else List.fold_left ( +. ) 0. xs /. float_of_int n), n) );
      I
        ( describe,
          fun who score ok ->
            Printf.sprintf "%s: %d (%s)" who score (if ok then "pass" else "fail") );
      I
        ( checksum_proc,
          fun data ->
            let d = ref 0 in
            Bytes.iter (fun c -> d := (!d + Char.code c) land 0xffffff) data;
            (!d, data) );
      I (nothing, fun () -> incr side_effects);
      I
        ( midpoint,
          fun (ax, ay) (bx, by) ->
            let mx = (ax +. bx) /. 2. and my = (ay +. by) /. 2. in
            let q =
              match mx >= 0., my >= 0. with
              | true, true -> (1, "NE")
              | false, true -> (2, "NW")
              | false, false -> (3, "SW")
              | true, false -> (4, "SE")
            in
            ((mx, my), q) );
    ]

let with_world f =
  let w = World.create ~export_test:false () in
  Binder.export w.World.binder w.World.server_rt math_intf ~impls:implementations ~workers:4;
  let binding = Binder.import w.World.binder w.World.caller_rt ~name:"TypedMath" ~version:2 () in
  let out = ref None in
  let gate = Sim.Gate.create w.World.eng in
  Machine.spawn_thread w.World.caller ~name:"typed-caller" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Runtime.new_client w.World.caller_rt in
          out := Some (f binding client ctx));
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate;
  Option.get !out

let test_simple_ints () =
  let sum = with_world (fun b c ctx -> Typed.call b c ctx add 20 22) in
  Alcotest.(check int) "typed add" 42 sum

let test_multiple_outs () =
  let mean, count = with_world (fun b c ctx -> Typed.call b c ctx stats [ 1.0; 2.0; 6.0 ]) in
  Alcotest.(check (float 1e-9)) "mean" 3.0 mean;
  Alcotest.(check int) "count" 3 count

let test_mixed_scalars () =
  let verdict = with_world (fun b c ctx -> Typed.call b c ctx describe "mbrown" (-7) true) in
  Alcotest.(check string) "verdict" "mbrown: -7 (pass)" verdict

let test_bulk_both_ways () =
  let data = Bytes.init 3000 (fun i -> Char.chr (i mod 251)) in
  let digest, echo = with_world (fun b c ctx -> Typed.call b c ctx checksum_proc data) in
  let expect = ref 0 in
  Bytes.iter (fun c -> expect := (!expect + Char.code c) land 0xffffff) data;
  Alcotest.(check int) "digest computed on real data" !expect digest;
  Alcotest.(check bytes) "bulk echo" data echo

let test_unit_procedure () =
  side_effects := 0;
  with_world (fun b c ctx ->
      Typed.call b c ctx nothing ();
      Typed.call b c ctx nothing ());
  Alcotest.(check int) "side effects happened remotely" 2 !side_effects

let test_records () =
  let (mx, my), (qn, qname) =
    with_world (fun b c ctx -> Typed.call b c ctx midpoint (-4.0, 2.0) (-2.0, 4.0))
  in
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "midpoint" (-3.0, 3.0) (mx, my);
  Alcotest.(check (pair int string)) "quadrant record" (2, "NW") (qn, qname)

let test_range_check () =
  Alcotest.(check bool) "oversize int rejected at the stub" true
    (with_world (fun b c ctx ->
         try
           ignore (Typed.call b c ctx add max_int 1);
           false
         with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Marshal_failure _) -> true))

let test_missing_impl_rejected () =
  Alcotest.(check bool) "missing implementation detected" true
    (try
       ignore (Typed.impls math_intf [ I (add, fun x y -> x + y) ]);
       false
     with Invalid_argument _ -> true)

let test_partial_application () =
  (* The stub is curried: partial application must not fire the call. *)
  let result =
    with_world (fun b c ctx ->
        let add20 = Typed.call b c ctx add 20 in
        let served_before = 0 in
        ignore served_before;
        (add20 1, add20 2))
  in
  Alcotest.(check (pair int int)) "curried stub reusable" (21, 22) result

let suite =
  [
    Alcotest.test_case "int in, int out" `Quick test_simple_ints;
    Alcotest.test_case "sequence in, two outs" `Quick test_multiple_outs;
    Alcotest.test_case "mixed scalars and text" `Quick test_mixed_scalars;
    Alcotest.test_case "bulk bytes both ways" `Quick test_bulk_both_ways;
    Alcotest.test_case "unit procedure" `Quick test_unit_procedure;
    Alcotest.test_case "record parameters and results" `Quick test_records;
    Alcotest.test_case "range check at the stub" `Quick test_range_check;
    Alcotest.test_case "missing implementation" `Quick test_missing_impl_rejected;
    Alcotest.test_case "partial application" `Quick test_partial_application;
  ]
