module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader
module Proto = Rpc.Proto

let activity ?(thread = 3) () =
  {
    Proto.Activity.caller_ip = Net.Ipv4.Addr.of_string "16.0.0.1";
    caller_space = 7;
    thread;
  }

let header ?(ptype = Proto.Call) ?(seq = 42) ?(frag_idx = 0) ?(frag_count = 1)
    ?(please_ack = false) () =
  {
    Proto.ptype;
    please_ack;
    no_frag_ack = false;
    secured = false;
    activity = activity ();
    seq;
    server_space = 2;
    interface_id = 0x1234abcdl;
    proc_idx = 5;
    frag_idx;
    frag_count;
    data_len = 100;
    checksum = 0xbeef;
  }

let roundtrip h =
  let w = W.create Proto.size in
  Proto.encode w h;
  Alcotest.(check int) "header size" Proto.size (W.length w);
  match Proto.decode (R.of_bytes (W.contents w)) with
  | Ok h' -> h'
  | Error e -> Alcotest.fail e

let test_roundtrip () =
  let h = header ~ptype:Proto.Result ~seq:99 ~frag_idx:2 ~frag_count:5 ~please_ack:true () in
  let h' = roundtrip h in
  Alcotest.(check bool) "activity" true (Proto.Activity.equal h.Proto.activity h'.Proto.activity);
  Alcotest.(check int) "seq" 99 h'.Proto.seq;
  Alcotest.(check bool) "ptype" true (h'.Proto.ptype = Proto.Result);
  Alcotest.(check bool) "please_ack" true h'.Proto.please_ack;
  Alcotest.(check int) "frag_idx" 2 h'.Proto.frag_idx;
  Alcotest.(check int) "frag_count" 5 h'.Proto.frag_count;
  Alcotest.(check int) "data_len" 100 h'.Proto.data_len;
  Alcotest.(check int) "checksum" 0xbeef h'.Proto.checksum;
  Alcotest.(check int32) "interface" 0x1234abcdl h'.Proto.interface_id;
  Alcotest.(check int) "proc" 5 h'.Proto.proc_idx;
  Alcotest.(check int) "server space" 2 h'.Proto.server_space

let test_all_ptypes () =
  List.iter
    (fun pt ->
      let h = roundtrip (header ~ptype:pt ()) in
      Alcotest.(check bool) "ptype preserved" true (h.Proto.ptype = pt))
    [ Proto.Call; Proto.Result; Proto.Ack; Proto.Busy; Proto.Error_reply ]

let expect_error what bytes =
  match Proto.decode (R.of_bytes bytes) with
  | Ok _ -> Alcotest.fail ("accepted " ^ what)
  | Error _ -> ()

let test_rejects () =
  let w = W.create Proto.size in
  Proto.encode w (header ());
  let good = W.contents w in
  expect_error "truncated" (Bytes.sub good 0 10);
  let bad_magic = Bytes.copy good in
  Bytes.set bad_magic 0 'X';
  expect_error "bad magic" bad_magic;
  let bad_version = Bytes.copy good in
  Bytes.set bad_version 1 '\x7f';
  expect_error "bad version" bad_version;
  let bad_ptype = Bytes.copy good in
  Bytes.set bad_ptype 2 '\x63';
  expect_error "bad ptype" bad_ptype;
  (* frag_idx >= frag_count *)
  let w = W.create Proto.size in
  Proto.encode w (header ~frag_idx:0 ~frag_count:1 ());
  let b = W.contents w in
  Bytes.set_uint16_be b 24 3 (* frag_idx field *);
  expect_error "bad fragment numbering" b

let prop_roundtrip =
  QCheck.Test.make ~name:"proto header roundtrip" ~count:300
    QCheck.(
      quad (int_bound 0xfffff) (int_bound 0xffff) (int_bound 20) (int_bound 0xffff))
    (fun (seq, space, frag_count, data_len) ->
      QCheck.assume (frag_count >= 1);
      let frag_idx = seq mod frag_count in
      let h =
        {
          Proto.ptype = Proto.Call;
          please_ack = seq mod 2 = 0;
          no_frag_ack = seq mod 3 = 0;
          secured = seq mod 5 = 0;
          activity = activity ~thread:(space mod 100) ();
          seq;
          server_space = space;
          interface_id = Int32.of_int (seq * 7);
          proc_idx = space mod 32;
          frag_idx;
          frag_count;
          data_len;
          checksum = 0;
        }
      in
      let w = W.create Proto.size in
      Proto.encode w h;
      match Proto.decode (R.of_bytes (W.contents w)) with
      | Ok h' -> h = h'
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "all packet types" `Quick test_all_ptypes;
    Alcotest.test_case "malformed rejected" `Quick test_rejects;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
