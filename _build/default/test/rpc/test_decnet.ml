(* The DECNet transport: raw sequenced-message service, then RPC bound
   over it (the paper's third bind-time transport, §3.1). *)

module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Idl = Rpc.Idl
module Marshal = Rpc.Marshal
module Runtime = Rpc.Runtime
module Binder = Rpc.Binder
module Decnet = Rpc.Decnet
module World = Workload.World

let v_int n = Marshal.V_int (Int32.of_int n)

type rig = {
  w : World.t;
  client_ep : Decnet.endpoint;
  server_ep : Decnet.endpoint;
}

let make_rig ?caller_config ?server_config () =
  let w = World.create ?caller_config ?server_config ~export_test:false () in
  {
    w;
    client_ep = Decnet.endpoint w.World.caller_node;
    server_ep = Decnet.endpoint w.World.server_node;
  }

(* Echo server on the raw transport: reverses each message. *)
let start_echo_server rig ~space =
  Decnet.listen rig.server_ep ~space (fun conn ->
      Cpu_set.with_cpu (Machine.cpus rig.w.World.server) (fun ctx ->
          let rec loop () =
            match Decnet.recv_message conn ctx ~timeout:(Time.sec 10) with
            | None -> ()
            | Some m ->
              let n = Bytes.length m in
              Decnet.send_message conn ctx (Bytes.init n (fun i -> Bytes.get m (n - 1 - i)));
              loop ()
          in
          loop ()))

let with_client rig f =
  let gate = Sim.Gate.create rig.w.World.eng in
  let out = ref None in
  Machine.spawn_thread rig.w.World.caller ~name:"decnet-client" (fun () ->
      Cpu_set.with_cpu (Machine.cpus rig.w.World.caller) (fun ctx -> out := Some (f ctx));
      Sim.Gate.open_ gate);
  World.run_until_quiet rig.w gate;
  Option.get !out

let test_connect_and_echo () =
  let rig = make_rig () in
  start_echo_server rig ~space:1;
  let replies =
    with_client rig (fun ctx ->
        let conn =
          Decnet.connect rig.client_ep ctx ~peer:(Machine.mac rig.w.World.server) ~space:1 ()
        in
        let echo s =
          Decnet.send_message conn ctx (Bytes.of_string s);
          match Decnet.recv_message conn ctx ~timeout:(Time.sec 5) with
          | Some b -> Bytes.to_string b
          | None -> "<timeout>"
        in
        let r1 = echo "hello" in
        let r2 = echo "decnet" in
        Decnet.close conn ctx;
        [ r1; r2 ])
  in
  Alcotest.(check (list string)) "echoed in order" [ "olleh"; "tenced" ] replies;
  Alcotest.(check int) "one connection" 1 (Decnet.connections_accepted rig.server_ep)

let test_large_message_segmentation () =
  let rig = make_rig () in
  start_echo_server rig ~space:1;
  let ok =
    with_client rig (fun ctx ->
        let conn =
          Decnet.connect rig.client_ep ctx ~peer:(Machine.mac rig.w.World.server) ~space:1 ()
        in
        let msg = Bytes.init 5000 (fun i -> Char.chr (i mod 251)) in
        Decnet.send_message conn ctx msg;
        match Decnet.recv_message conn ctx ~timeout:(Time.sec 5) with
        | Some b ->
          Bytes.length b = 5000
          && Bytes.equal b (Bytes.init 5000 (fun i -> Bytes.get msg (4999 - i)))
        | None -> false)
  in
  Alcotest.(check bool) "5KB message reassembled correctly" true ok;
  Alcotest.(check bool) "multiple segments used" true (Decnet.segments_sent rig.client_ep >= 4)

let test_retransmission_under_loss () =
  let rig = make_rig () in
  start_echo_server rig ~space:1;
  let ok =
    with_client rig (fun ctx ->
        let rng = Sim.Rng.create ~seed:5 in
        Hw.Ether_link.set_fault_injector rig.w.World.link
          (Some
             (fun _ ->
               if Sim.Rng.bool rng ~p:0.2 then Hw.Ether_link.Drop else Hw.Ether_link.Deliver));
        let conn =
          Decnet.connect rig.client_ep ctx ~peer:(Machine.mac rig.w.World.server) ~space:1 ()
        in
        let all_ok = ref true in
        for i = 1 to 8 do
          let s = Printf.sprintf "message-%d" i in
          Decnet.send_message conn ctx (Bytes.of_string s);
          match Decnet.recv_message conn ctx ~timeout:(Time.sec 20) with
          | Some b ->
            let expect = String.init (String.length s) (fun j -> s.[String.length s - 1 - j]) in
            if Bytes.to_string b <> expect then all_ok := false
          | None -> all_ok := false
        done;
        !all_ok)
  in
  Alcotest.(check bool) "all messages survive 20% loss" true ok;
  Alcotest.(check bool) "retransmissions occurred" true
    (Decnet.segments_retransmitted rig.client_ep + Decnet.segments_retransmitted rig.server_ep
    > 0)

let test_connect_no_listener () =
  let rig = make_rig () in
  let failed =
    with_client rig (fun ctx ->
        try
          ignore
            (Decnet.connect rig.client_ep ctx ~peer:(Machine.mac rig.w.World.server) ~space:9
               ~retransmit_after:(Time.ms 20) ~max_retries:3 ());
          false
        with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Call_failed _) -> true)
  in
  Alcotest.(check bool) "connect to missing listener fails" true failed

let test_disconnect () =
  let rig = make_rig () in
  (* a server that closes after the first message *)
  Decnet.listen rig.server_ep ~space:1 (fun conn ->
      Cpu_set.with_cpu (Machine.cpus rig.w.World.server) (fun ctx ->
          (match Decnet.recv_message conn ctx ~timeout:(Time.sec 10) with
          | Some _ -> ()
          | None -> ());
          Decnet.close conn ctx));
  let outcome =
    with_client rig (fun ctx ->
        let conn =
          Decnet.connect rig.client_ep ctx ~peer:(Machine.mac rig.w.World.server) ~space:1 ()
        in
        Decnet.send_message conn ctx (Bytes.of_string "bye");
        match Decnet.recv_message conn ctx ~timeout:(Time.sec 5) with
        | None -> not (Decnet.is_open conn)
        | Some _ -> false)
  in
  Alcotest.(check bool) "close propagates" true outcome

(* {1 RPC over DECNet} *)

let adder =
  Idl.interface ~name:"Adder" ~version:1
    [
      Idl.proc "add"
        [ Idl.arg "x" Idl.T_int; Idl.arg "y" Idl.T_int; Idl.arg ~mode:Idl.Var_out "sum" Idl.T_int ];
      Idl.proc "blob"
        [ Idl.arg "n" Idl.T_int; Idl.arg ~mode:Idl.Var_out "data" (Idl.T_var_bytes 8000) ];
    ]

let adder_impls : Runtime.impl array =
  [|
    (fun _ctx args ->
      match args with
      | [ Marshal.V_int x; Marshal.V_int y; _ ] -> [ Marshal.V_int (Int32.add x y) ]
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "add"));
    (fun _ctx args ->
      match args with
      | [ Marshal.V_int n; _ ] ->
        [ Marshal.V_bytes (Workload.Test_interface.pattern (Int32.to_int n)) ]
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "blob"));
  |]

let test_rpc_over_decnet () =
  let rig = make_rig () in
  Binder.export rig.w.World.binder rig.w.World.server_rt adder ~impls:adder_impls ~workers:2;
  let binding =
    Binder.import rig.w.World.binder rig.w.World.caller_rt ~name:"Adder" ~version:1
      ~transport:`Decnet ()
  in
  Alcotest.(check bool) "not local" false (Runtime.is_local binding);
  let results =
    with_client rig (fun ctx ->
        let client = Runtime.new_client rig.w.World.caller_rt in
        let a = Runtime.call_by_name binding client ctx ~proc:"add" ~args:[ v_int 40; v_int 2; v_int 0 ] in
        let b =
          Runtime.call_by_name binding client ctx ~proc:"blob"
            ~args:[ v_int 6000; Marshal.V_bytes Bytes.empty ]
        in
        let c = Runtime.call_by_name binding client ctx ~proc:"add" ~args:[ v_int 1; v_int 2; v_int 0 ] in
        (a, b, c))
  in
  let a, b, c = results in
  Alcotest.(check bool) "add" true (a = [ v_int 42 ]);
  (match b with
  | [ Marshal.V_bytes bytes ] ->
    Alcotest.(check bool) "6KB result over decnet" true
      (Bytes.equal bytes (Workload.Test_interface.pattern 6000))
  | _ -> Alcotest.fail "blob shape");
  Alcotest.(check bool) "add again on same session" true (c = [ v_int 3 ]);
  Alcotest.(check int) "session reused (one connection)" 1
    (Decnet.connections_accepted rig.server_ep)

let test_decnet_slower_than_udp () =
  (* The reason the custom packet-exchange protocol exists: the general
     transport costs more per call. *)
  let udp =
    let w = World.create () in
    Time.to_us (Workload.Driver.measure_single_call w ~proc:Workload.Driver.Null ())
  in
  let decnet =
    let rig = make_rig () in
    Binder.export rig.w.World.binder rig.w.World.server_rt adder ~impls:adder_impls ~workers:2;
    let binding =
      Binder.import rig.w.World.binder rig.w.World.caller_rt ~name:"Adder" ~version:1
        ~transport:`Decnet ()
    in
    with_client rig (fun ctx ->
        let client = Runtime.new_client rig.w.World.caller_rt in
        let once () =
          ignore
            (Runtime.call_by_name binding client ctx ~proc:"add"
               ~args:[ v_int 1; v_int 1; v_int 0 ])
        in
        once ();
        once ();
        let t0 = Engine.now rig.w.World.eng in
        once ();
        Time.to_us (Time.diff (Engine.now rig.w.World.eng) t0))
  in
  Alcotest.(check bool)
    (Printf.sprintf "decnet (%.0fus) slower than the custom protocol (%.0fus)" decnet udp)
    true
    (decnet > udp *. 1.3);
  Alcotest.(check bool) "but same order of magnitude" true (decnet < udp *. 4.)

let test_keyed_export_rejects_decnet () =
  let rig = make_rig () in
  Binder.export rig.w.World.binder rig.w.World.server_rt adder ~impls:adder_impls ~workers:2
    ~auth:(Rpc.Secure.key_of_string "k");
  let binding =
    Binder.import rig.w.World.binder rig.w.World.caller_rt ~name:"Adder" ~version:1
      ~transport:`Decnet ()
  in
  let rejected =
    with_client rig (fun ctx ->
        let client = Runtime.new_client rig.w.World.caller_rt in
        try
          ignore
            (Runtime.call_by_name binding client ctx ~proc:"add"
               ~args:[ v_int 1; v_int 1; v_int 0 ]);
          false
        with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Call_failed _) -> true)
  in
  Alcotest.(check bool) "unauthenticated decnet call rejected" true rejected

let suite =
  [
    Alcotest.test_case "connect and echo" `Quick test_connect_and_echo;
    Alcotest.test_case "large message segmentation" `Quick test_large_message_segmentation;
    Alcotest.test_case "retransmission under loss" `Quick test_retransmission_under_loss;
    Alcotest.test_case "connect without listener" `Quick test_connect_no_listener;
    Alcotest.test_case "disconnect propagation" `Quick test_disconnect;
    Alcotest.test_case "RPC over DECNet" `Quick test_rpc_over_decnet;
    Alcotest.test_case "DECNet slower than the custom protocol" `Quick
      test_decnet_slower_than_udp;
    Alcotest.test_case "keyed export rejects DECNet calls" `Quick
      test_keyed_export_rejects_decnet;
  ]
