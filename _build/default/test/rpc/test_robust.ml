(* Robustness of the runtime internals: retained-result GC, packet-pool
   exhaustion, the Busy protocol for slow servers, fragment-boundary
   payload sizes, streaming under loss, and machine restart. *)

module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Idl = Rpc.Idl
module Marshal = Rpc.Marshal
module Runtime = Rpc.Runtime
module Binder = Rpc.Binder
module World = Workload.World
module Driver = Workload.Driver

let v_int n = Marshal.V_int (Int32.of_int n)

let run_caller (w : World.t) gate f =
  Machine.spawn_thread w.World.caller ~name:"robust-caller" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Runtime.new_client w.World.caller_rt in
          f client ctx);
      Sim.Gate.open_ gate)

let test_retained_result_gc () =
  let w = World.create () in
  let binding = World.test_binding w () in
  let gate = Sim.Gate.create w.World.eng in
  let in_use_after_call = ref 0 in
  run_caller w gate (fun client ctx ->
      ignore
        (Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.null_idx ~args:[]);
      (* Let the transient buffers settle, then snapshot: the retained
         result at the server holds one pool buffer. *)
      Cpu_set.yield_cpu ctx (fun () -> Engine.delay w.World.eng (Time.ms 50));
      in_use_after_call := Nub.Bufpool.in_use (Machine.pool w.World.server));
  World.run_until_quiet w gate;
  Alcotest.(check bool) "server retains a result buffer" true
    (!in_use_after_call > 16 (* the driver's receive credits *));
  Alcotest.(check int) "one activity tracked" 1 (Runtime.server_activities w.World.server_rt);
  (* After the retain GC window (5 s), the buffer must return. *)
  Engine.run_until w.World.eng (Time.add (Engine.now w.World.eng) (Time.sec 6));
  Alcotest.(check int) "retained buffer reclaimed" 16
    (Nub.Bufpool.in_use (Machine.pool w.World.server))

let test_pool_exhaustion_recovers () =
  (* A machine with a tiny pool: the driver takes 16 receive credits,
     leaving little for callers; concurrent MaxArg callers must block
     on allocation and still all complete. *)
  let eng = Engine.create ~seed:9 () in
  let link = Hw.Ether_link.create eng ~mbps:10. in
  let caller =
    Machine.create eng ~name:"caller" ~config:Hw.Config.default ~link ~station:1
      ~ip:(Net.Ipv4.Addr.of_string "16.0.0.1") ~pool_buffers:20 ()
  in
  let server =
    Machine.create eng ~name:"server" ~config:Hw.Config.default ~link ~station:2
      ~ip:(Net.Ipv4.Addr.of_string "16.0.0.2") ()
  in
  let caller_rt = Runtime.create (Rpc.Node.create caller) ~space:1 in
  let server_rt = Runtime.create (Rpc.Node.create server) ~space:1 in
  let binder = Binder.create () in
  Binder.export binder server_rt Workload.Test_interface.interface
    ~impls:(Workload.Test_interface.impls (Machine.timing server))
    ~workers:8;
  let binding = Binder.import binder caller_rt ~name:"Test" ~version:1 () in
  let gate = Sim.Gate.create eng in
  let done_count = ref 0 in
  let ok = ref 0 in
  let n_threads = 6 in
  for _ = 1 to n_threads do
    Machine.spawn_thread caller ~name:"t" (fun () ->
        Cpu_set.with_cpu (Machine.cpus caller) (fun ctx ->
            let client = Runtime.new_client caller_rt in
            for _ = 1 to 5 do
              let r =
                Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.max_arg_idx
                  ~args:[ Marshal.V_bytes (Workload.Test_interface.pattern 1440) ]
              in
              if r = [] then incr ok
            done);
        incr done_count;
        if !done_count = n_threads then Sim.Gate.open_ gate)
  done;
  Engine.run_while eng (fun () -> not (Sim.Gate.is_open gate));
  Alcotest.(check bool) "completed" true (Sim.Gate.is_open gate);
  Alcotest.(check int) "all calls correct" 30 !ok;
  Alcotest.(check bool) "pool was actually contended" true
    (Nub.Bufpool.exhaustions (Machine.pool caller) > 0)

let slow_intf =
  Idl.interface ~name:"Slow" ~version:1
    [ Idl.proc "crunch" [ Idl.arg "n" Idl.T_int; Idl.arg ~mode:Idl.Var_out "r" Idl.T_int ] ]

let test_busy_protocol () =
  (* The server takes 300 ms; the caller retransmits every 40 ms with
     please_ack and must receive Busy replies instead of triggering
     re-execution or failure. *)
  let w = World.create ~export_test:false () in
  let executions = ref 0 in
  Binder.export w.World.binder w.World.server_rt slow_intf
    ~impls:
      [|
        (fun ctx args ->
          incr executions;
          Cpu_set.charge ctx ~cat:"runtime" ~label:"crunch body" (Time.ms 300);
          match args with
          | [ Marshal.V_int n; _ ] -> [ Marshal.V_int (Int32.mul n 2l) ]
          | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "crunch"));
      |]
    ~workers:2;
  let binding =
    Binder.import w.World.binder w.World.caller_rt ~name:"Slow" ~version:1
      ~options:{ Runtime.retransmit_after = Time.ms 40; max_retries = 30 }
      ()
  in
  let gate = Sim.Gate.create w.World.eng in
  let result = ref [] in
  run_caller w gate (fun client ctx ->
      result := Runtime.call_by_name binding client ctx ~proc:"crunch" ~args:[ v_int 21; v_int 0 ]);
  World.run_until_quiet w gate;
  Alcotest.(check bool) "correct result after waiting" true (!result = [ v_int 42 ]);
  Alcotest.(check int) "executed exactly once" 1 !executions;
  Alcotest.(check bool) "busy replies sent" true (Runtime.busy_replies w.World.server_rt > 0);
  Alcotest.(check bool) "caller retransmitted" true
    (Runtime.retransmissions w.World.caller_rt > 0)

let test_fragment_boundaries () =
  let w = World.create () in
  let binding = World.test_binding w () in
  let gate = Sim.Gate.create w.World.eng in
  let failures = ref [] in
  run_caller w gate (fun client ctx ->
      List.iter
        (fun n ->
          match
            Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.get_data_idx
              ~args:[ v_int n; Marshal.V_bytes Bytes.empty ]
          with
          | [ Marshal.V_bytes b ]
            when Bytes.length b = n && Bytes.equal b (Workload.Test_interface.pattern n) ->
            ()
          | _ -> failures := n :: !failures
          | exception e ->
            ignore e;
            failures := n :: !failures)
        (* result payload sizes around the 1440-byte fragment edge:
           (4+2)-byte prefix means the on-wire result is n + small *)
        [ 0; 1; 1433; 1434; 1435; 1440; 1441; 2867; 2868; 2869; 5000 ])
      ;
  World.run_until_quiet w gate;
  Alcotest.(check (list int)) "all boundary sizes roundtrip" [] !failures

let test_streaming_under_loss () =
  let config = { Hw.Config.default with Hw.Config.streaming_results = true } in
  let w = World.create ~caller_config:config ~server_config:config () in
  let binding =
    World.test_binding w ~options:{ Runtime.retransmit_after = Time.ms 30; max_retries = 50 } ()
  in
  let gate = Sim.Gate.create w.World.eng in
  let ok = ref false in
  run_caller w gate (fun client ctx ->
      (* Drop one mid-stream fragment of the first response blast. *)
      let dropped = ref false in
      let seen_big = ref 0 in
      Hw.Ether_link.set_fault_injector w.World.link
        (Some
           (fun f ->
             if Bytes.length f > 1000 then begin
               incr seen_big;
               if !seen_big = 3 && not !dropped then begin
                 dropped := true;
                 Hw.Ether_link.Drop
               end
               else Hw.Ether_link.Deliver
             end
             else Hw.Ether_link.Deliver));
      match
        Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.get_data_idx
          ~args:[ v_int 10_000; Marshal.V_bytes Bytes.empty ]
      with
      | [ Marshal.V_bytes b ] ->
        ok := Bytes.equal b (Workload.Test_interface.pattern 10_000)
      | _ -> ());
  World.run_until_quiet w gate;
  Alcotest.(check bool) "streamed transfer recovered from loss" true !ok

let test_traditional_demux_correctness () =
  (* The §3.2 ablation path must be functionally identical: calls
     complete (even under loss), only slower. *)
  let config = { Hw.Config.default with Hw.Config.traditional_demux = true } in
  let w = World.create ~caller_config:config ~server_config:config () in
  let binding =
    World.test_binding w ~options:{ Runtime.retransmit_after = Time.ms 25; max_retries = 60 } ()
  in
  let gate = Sim.Gate.create w.World.eng in
  let ok = ref 0 in
  run_caller w gate (fun client ctx ->
      let rng = Sim.Rng.create ~seed:77 in
      Hw.Ether_link.set_fault_injector w.World.link
        (Some
           (fun _ -> if Sim.Rng.bool rng ~p:0.1 then Hw.Ether_link.Drop else Hw.Ether_link.Deliver));
      for _ = 1 to 10 do
        match
          Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.max_arg_idx
            ~args:[ Marshal.V_bytes (Workload.Test_interface.pattern 1440) ]
        with
        | [] -> incr ok
        | _ -> ()
      done);
  World.run_until_quiet w gate;
  Alcotest.(check int) "all calls correct through the datalink path" 10 !ok;
  Alcotest.(check bool) "every frame went via the datalink thread" true
    (Nub.Driver.frames_to_datalink (Machine.driver w.World.server)
     = Nub.Driver.frames_received (Machine.driver w.World.server))

let test_server_restart () =
  let w = World.create () in
  let binding =
    World.test_binding w ~options:{ Runtime.retransmit_after = Time.ms 20; max_retries = 4 } ()
  in
  let gate = Sim.Gate.create w.World.eng in
  let phases = ref [] in
  run_caller w gate (fun client ctx ->
      let null () =
        match
          Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.null_idx ~args:[]
        with
        | [] -> `Ok
        | _ -> `Bad
        | exception Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Call_failed _) -> `Failed
      in
      phases := [ null () ];
      Machine.power_off w.World.server;
      phases := null () :: !phases;
      Machine.power_on w.World.server;
      phases := null () :: !phases);
  World.run_until_quiet w gate;
  Alcotest.(check bool) "up, down, up again" true (List.rev !phases = [ `Ok; `Failed; `Ok ])

let suite =
  [
    Alcotest.test_case "retained result GC" `Quick test_retained_result_gc;
    Alcotest.test_case "pool exhaustion recovers" `Quick test_pool_exhaustion_recovers;
    Alcotest.test_case "busy protocol for slow servers" `Quick test_busy_protocol;
    Alcotest.test_case "fragment boundary sizes" `Quick test_fragment_boundaries;
    Alcotest.test_case "streaming under loss" `Quick test_streaming_under_loss;
    Alcotest.test_case "traditional demux correctness" `Quick test_traditional_demux_correctness;
    Alcotest.test_case "server restart" `Quick test_server_restart;
  ]
