let () =
  Alcotest.run "rpc"
    [
      ("proto", Test_proto.suite);
      ("idl-marshal", Test_marshal.suite);
      ("frames", Test_frames.suite);
      ("end-to-end", Test_e2e.suite);
      ("wan", Test_wan.suite);
      ("secure", Test_secure.suite);
      ("robustness", Test_robust.suite);
      ("protocol-properties", Test_protocol_props.suite);
      ("decnet", Test_decnet.suite);
      ("typed", Test_typed.suite);
    ]
