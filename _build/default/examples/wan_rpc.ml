(* RPC across an IP gateway — why the Firefly kept RPC on IP/UDP.

     dune exec examples/wan_rpc.exe

   Section 4.2.6 weighs dropping the IP and UDP layers for ~100 us per
   call and rejects it partly because it "would make it impossible to
   use RPC via an IP gateway".  This example builds the scenario that
   argument protects: two Ethernet segments — an office LAN and a
   machine-room LAN — joined by a store-and-forward IP router, with the
   same interface called on-segment and across the gateway. *)

module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Router = Nub.Router
module Idl = Rpc.Idl
module Marshal = Rpc.Marshal
module Runtime = Rpc.Runtime
module Binder = Rpc.Binder

let ip = Net.Ipv4.Addr.of_string

let compute_intf =
  Idl.interface ~name:"Compute" ~version:1
    [
      Idl.proc "factorial"
        [ Idl.arg "n" Idl.T_int; Idl.arg ~mode:Idl.Var_out "result" (Idl.T_text 128) ];
    ]

let impls : Runtime.impl array =
  [|
    (fun ctx args ->
      match args with
      | [ Marshal.V_int n; _ ] ->
        let n = Int32.to_int n in
        Cpu_set.charge ctx ~cat:"runtime" ~label:"factorial body" (Time.us (10 + (n * 2)));
        let rec fact acc i = if i <= 1 then acc else fact (acc * i) (i - 1) in
        [ Marshal.V_text (Some (Printf.sprintf "%d! = %d" n (fact 1 n))) ]
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "factorial"));
  |]

let () =
  let eng = Engine.create ~seed:17 () in
  let office_lan = Hw.Ether_link.create eng ~mbps:10. in
  let machine_room = Hw.Ether_link.create eng ~mbps:10. in
  let desk =
    Machine.create eng ~name:"desk" ~config:Hw.Config.default ~link:office_lan ~station:1
      ~ip:(ip "16.1.0.10") ()
  in
  let near_server =
    Machine.create eng ~name:"near" ~config:Hw.Config.default ~link:office_lan ~station:2
      ~ip:(ip "16.1.0.20") ()
  in
  let far_server =
    Machine.create eng ~name:"far" ~config:Hw.Config.default ~link:machine_room ~station:3
      ~ip:(ip "16.2.0.20") ()
  in
  let gw =
    Router.create eng ~name:"gateway" ~config:Hw.Config.default ~link_a:office_lan ~station_a:40
      ~ip_a:(ip "16.1.0.1") ~link_b:machine_room ~station_b:41 ~ip_b:(ip "16.2.0.1") ()
  in
  Router.add_route gw (ip "16.1.0.0") ~mask_bits:16 Router.A;
  Router.add_route gw (ip "16.2.0.0") ~mask_bits:16 Router.B;
  Router.add_host gw Router.A (ip "16.1.0.10") (Machine.mac desk);
  Router.add_host gw Router.B (ip "16.2.0.20") (Machine.mac far_server);
  let resolve ~caller ~server =
    let subnet m = Int32.logand (Net.Ipv4.Addr.to_int32 (Machine.ip m)) 0xffff0000l in
    if Int32.equal (subnet caller) (subnet server) then None
    else Some { Rpc.Frames.mac = Router.port_mac gw Router.A; ip = Machine.ip server }
  in
  let binder = Binder.create ~resolve () in
  let desk_rt = Runtime.create (Rpc.Node.create desk) ~space:1 in
  let near_rt = Runtime.create (Rpc.Node.create near_server) ~space:1 in
  let far_rt = Runtime.create (Rpc.Node.create far_server) ~space:1 in
  (* The same interface, exported by a near and a far machine under
     different service names. *)
  Binder.export binder near_rt
    { compute_intf with Idl.intf_name = "Compute-near" }
    ~impls ~workers:2;
  Binder.export binder far_rt
    { compute_intf with Idl.intf_name = "Compute-far" }
    ~impls ~workers:2;
  let near_b = Binder.import binder desk_rt ~name:"Compute-near" ~version:1 () in
  let far_b = Binder.import binder desk_rt ~name:"Compute-far" ~version:1 () in
  Machine.spawn_thread desk ~name:"app" (fun () ->
      Cpu_set.with_cpu (Machine.cpus desk) (fun ctx ->
          let client = Runtime.new_client desk_rt in
          let call name binding n =
            (* warm the path, then time one call *)
            let once () =
              Runtime.call_by_name binding client ctx ~proc:"factorial"
                ~args:[ Marshal.V_int (Int32.of_int n); Marshal.V_text None ]
            in
            ignore (once ());
            let t0 = Engine.now eng in
            let r = once () in
            let dt = Time.diff (Engine.now eng) t0 in
            match r with
            | [ Marshal.V_text (Some s) ] ->
              Printf.printf "%-18s %-22s in %s\n" name s (Time.span_to_string dt)
            | _ -> Printf.printf "%-18s failed\n" name
          in
          call "same segment:" near_b 12;
          call "across gateway:" far_b 12));
  Engine.run_until eng (Time.add Time.zero (Time.sec 2));
  Printf.printf
    "\ngateway forwarded %d packets (TTL decremented, IP checksum recomputed per hop;\n\
     the UDP checksum is end-to-end and survives — the 4.2.6 argument for keeping IP/UDP)\n"
    (Router.forwarded gw)
