(* Local RPC: calls to another address space on the same machine.

     dune exec examples/local_os_calls.exe

   The Firefly used RPC even for operating-system entry points (§1:
   "calls to local operating systems entry points are handled via
   RPC").  Here a "NameService" address space (think: part of the OS)
   exports an environment-variable-style registry; an application space
   on the SAME machine binds to it and the binder picks the shared-
   memory transport — the 937 µs local path — while a second machine
   binds to the identical interface over the Ethernet for comparison. *)

module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Idl = Rpc.Idl
module Marshal = Rpc.Marshal
module Runtime = Rpc.Runtime
module Binder = Rpc.Binder

let registry_intf =
  Idl.interface ~name:"NameService" ~version:1
    [
      Idl.proc "set" [ Idl.arg "key" (Idl.T_text 64); Idl.arg "value" (Idl.T_text 256) ];
      Idl.proc "get"
        [ Idl.arg "key" (Idl.T_text 64); Idl.arg ~mode:Idl.Var_out "value" (Idl.T_text 256) ];
    ]

let make_impls () : Runtime.impl array =
  let table : (string, string) Hashtbl.t = Hashtbl.create 16 in
  [|
    (fun ctx args ->
      Cpu_set.charge ctx ~cat:"runtime" ~label:"registry body" (Time.us 15);
      match args with
      | [ Marshal.V_text (Some k); Marshal.V_text (Some v) ] ->
        Hashtbl.replace table k v;
        []
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "set: bad args"));
    (fun ctx args ->
      Cpu_set.charge ctx ~cat:"runtime" ~label:"registry body" (Time.us 15);
      match args with
      | [ Marshal.V_text (Some k); _ ] -> [ Marshal.V_text (Hashtbl.find_opt table k) ]
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "get: bad args"));
  |]

let () =
  let eng = Engine.create ~seed:5 () in
  let link = Hw.Ether_link.create eng ~mbps:10. in
  let workstation =
    Machine.create eng ~name:"workstation" ~config:Hw.Config.default ~link ~station:1
      ~ip:(Net.Ipv4.Addr.of_string "16.0.0.1") ()
  in
  let remote =
    Machine.create eng ~name:"remote" ~config:Hw.Config.default ~link ~station:2
      ~ip:(Net.Ipv4.Addr.of_string "16.0.0.2") ()
  in
  let node = Rpc.Node.create workstation in
  (* Two address spaces on the workstation: the service (space 1, think
     "operating system") and the application (space 2). *)
  let service_rt = Runtime.create node ~space:1 in
  let app_rt = Runtime.create node ~space:2 in
  let remote_rt = Runtime.create (Rpc.Node.create remote) ~space:1 in
  let binder = Binder.create () in
  Binder.export binder service_rt registry_intf ~impls:(make_impls ()) ~workers:2;
  let local_binding = Binder.import binder app_rt ~name:"NameService" ~version:1 () in
  let remote_binding = Binder.import binder remote_rt ~name:"NameService" ~version:1 () in
  Printf.printf "local binding uses shared memory: %b\n"
    (Runtime.is_local local_binding);
  Printf.printf "remote binding uses shared memory: %b\n\n"
    (Runtime.is_local remote_binding);

  let bench name machine rt binding =
    Machine.spawn_thread machine ~name (fun () ->
        Cpu_set.with_cpu (Machine.cpus machine) (fun ctx ->
            let client = Runtime.new_client rt in
            let call proc args = Runtime.call_by_name binding client ctx ~proc ~args in
            ignore (call "set" [ Marshal.V_text (Some "TERM"); Marshal.V_text (Some "vt100") ]);
            ignore (call "set" [ Marshal.V_text (Some "USER"); Marshal.V_text (Some "mbrown") ]);
            (* Warmed-up get. *)
            ignore (call "get" [ Marshal.V_text (Some "TERM"); Marshal.V_text None ]);
            let t0 = Engine.now eng in
            let v = call "get" [ Marshal.V_text (Some "TERM"); Marshal.V_text None ] in
            let dt = Time.diff (Engine.now eng) t0 in
            match v with
            | [ Marshal.V_text (Some value) ] ->
              Printf.printf "%-12s get(TERM) = %-8s in %s\n" name value (Time.span_to_string dt)
            | _ -> Printf.printf "%-12s get(TERM) failed\n" name))
  in
  bench "same-machine" workstation app_rt local_binding;
  bench "remote" remote remote_rt remote_binding;
  Engine.run_until eng (Time.add Time.zero (Time.sec 2));
  print_endline "\n(the paper: local Null() 937 us vs inter-machine 2660 us;";
  print_endline " the shared-memory transport skips checksums, controllers and the wire)"
