examples/quickstart.mli:
