examples/local_os_calls.ml: Hashtbl Hw Net Nub Printf Rpc Sim
