examples/secure_calls.ml: Bytes Hashtbl Hw Int32 Nub Option Printf Rpc Sim Workload
