examples/secure_calls.mli:
