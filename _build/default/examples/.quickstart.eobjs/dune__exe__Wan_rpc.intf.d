examples/wan_rpc.mli:
