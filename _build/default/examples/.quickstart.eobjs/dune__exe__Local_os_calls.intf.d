examples/local_os_calls.mli:
