examples/file_server.ml: Buffer Bytes Hashtbl Hw Int32 Net Nub Printf Rpc Sim Workload
