examples/lossy_network.ml: Bytes Hw Nub Printf Rpc Sim Workload
