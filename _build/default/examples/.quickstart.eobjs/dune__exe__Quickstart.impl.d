examples/quickstart.ml: Bytes Char Hw Net Nub Printf Rpc Sim
