examples/wan_rpc.ml: Hw Int32 Net Nub Printf Rpc Sim
