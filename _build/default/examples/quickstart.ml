(* Quickstart: define an interface, export it from a server machine,
   import it on a caller machine, make typed calls.

     dune exec examples/quickstart.exe

   Two simulated Fireflies share a private 10 Mbit/s Ethernet; the
   calls go through the real stack — stubs, marshalling, IP/UDP with
   checksums, the DEQNA controllers — with the paper's measured costs
   attached, so the printed latencies are the 1989 numbers. *)

module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Runtime = Rpc.Runtime
module Binder = Rpc.Binder
open Rpc.Typed

(* 1. The interface, declared like the Modula-2+ definition module the
   Firefly's stub compiler consumed.  Parameters travel in the call
   packet; [out]s come back in the result packet (VAR OUT, §2.2). *)

(* PROCEDURE Add(x, y: INTEGER; VAR OUT sum: INTEGER); *)
let add = procedure "add" (param "x" int @-> param "y" int @-> returning (out1 (out "sum" int)))

(* PROCEDURE SumArray(numbers: ARRAY OF CHAR; VAR OUT total: INTEGER);
   — a bulk VAR IN argument: one copy, at the caller (§2.2). *)
let sum_array =
  procedure "sum_array"
    (param "numbers" (bytes ~max:1440) @-> returning (out1 (out "total" int)))

(* PROCEDURE Describe(n: INTEGER; VAR OUT text: Text.T); *)
let describe =
  procedure "describe" (param "n" int @-> returning (out1 (out "text" (text 120))))

let calculator = interface ~name:"Calculator" ~version:1 [ P add; P sum_array; P describe ]

(* 2. The implementations: plain typed OCaml functions. *)
let implementations =
  Rpc.Typed.impls calculator
    [
      I (add, fun x y -> x + y);
      I
        ( sum_array,
          fun numbers ->
            let total = ref 0 in
            Bytes.iter (fun c -> total := !total + Char.code c) numbers;
            !total );
      I (describe, fun n -> Printf.sprintf "the number %d, as discussed" n);
    ]

let () =
  (* 3. Build the world: engine, Ethernet, two machines, RPC nodes. *)
  let eng = Engine.create ~seed:7 () in
  let link = Hw.Ether_link.create eng ~mbps:10. in
  let server_machine =
    Machine.create eng ~name:"server" ~config:Hw.Config.default ~link ~station:2
      ~ip:(Net.Ipv4.Addr.of_string "16.0.0.2") ()
  in
  let caller_machine =
    Machine.create eng ~name:"caller" ~config:Hw.Config.default ~link ~station:1
      ~ip:(Net.Ipv4.Addr.of_string "16.0.0.1") ()
  in
  let server_rt = Runtime.create (Rpc.Node.create server_machine) ~space:1 in
  let caller_rt = Runtime.create (Rpc.Node.create caller_machine) ~space:1 in

  (* 4. Export on the server, import on the caller.  The binder picks
     the transport at bind time: different machines, so the custom
     packet-exchange protocol over the (simulated) wire. *)
  let binder = Binder.create () in
  Binder.export binder server_rt calculator ~impls:implementations ~workers:4;
  let calc = Binder.import binder caller_rt ~name:"Calculator" ~version:1 () in

  (* 5. A caller thread makes calls like local procedure calls. *)
  Machine.spawn_thread caller_machine ~name:"app" (fun () ->
      Cpu_set.with_cpu (Machine.cpus caller_machine) (fun ctx ->
          let client = Runtime.new_client caller_rt in
          let timed name f =
            let t0 = Engine.now eng in
            let result = f () in
            Printf.printf "%-12s -> %-40s (%s)\n" name result
              (Time.span_to_string (Time.diff (Engine.now eng) t0))
          in
          timed "add" (fun () ->
              Printf.sprintf "20 + 22 = %d" (call calc client ctx add 20 22));
          timed "sum_array" (fun () ->
              let data = Bytes.init 1000 (fun i -> Char.chr (i mod 10)) in
              Printf.sprintf "sum of 1000 bytes = %d" (call calc client ctx sum_array data));
          timed "describe" (fun () ->
              Printf.sprintf "%S" (call calc client ctx describe 1989))));

  (* 6. Run the simulation. *)
  Engine.run_until eng (Time.add Time.zero (Time.sec 2));
  Printf.printf "\nserver stats: %d calls served, all on the interrupt fast path\n"
    (Runtime.calls_served server_rt)
