(* File transfer over RPC — the paper's motivating workload ("remote
   file transfers ... are handled via RPC", §1).

     dune exec examples/file_server.exe

   An in-memory file server exports Read/Write/Size procedures; the
   client writes a 64 KB file in 1.4 KB chunks (single-packet calls)
   and reads it back in 16 KB blocks (multi-packet results), first with
   the paper's stop-and-wait fragment protocol and then with the
   streamed (blast) variant the paper attributes to Amoeba/V/Sprite. *)

module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Idl = Rpc.Idl
module Marshal = Rpc.Marshal
module Runtime = Rpc.Runtime
module Binder = Rpc.Binder

let block = 16 * 1024
let chunk = 1400
let file_size = 64 * 1024

let file_intf =
  Idl.interface ~name:"FileServer" ~version:1
    [
      Idl.proc "write"
        [
          Idl.arg "name" (Idl.T_text 64);
          Idl.arg "offset" Idl.T_int;
          Idl.arg ~mode:Idl.Var_in "data" (Idl.T_var_bytes chunk);
        ];
      Idl.proc "read"
        [
          Idl.arg "name" (Idl.T_text 64);
          Idl.arg "offset" Idl.T_int;
          Idl.arg "length" Idl.T_int;
          Idl.arg ~mode:Idl.Var_out "data" (Idl.T_var_bytes (block + 16));
        ];
      Idl.proc "size"
        [ Idl.arg "name" (Idl.T_text 64); Idl.arg ~mode:Idl.Var_out "bytes" Idl.T_int ];
    ]

(* The server: a hash table of growable byte buffers. *)
let make_impls () : Runtime.impl array =
  let files : (string, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let get name =
    match Hashtbl.find_opt files name with
    | Some b -> b
    | None ->
      let b = Buffer.create 1024 in
      Hashtbl.replace files name b;
      b
  in
  let body ctx us = Cpu_set.charge ctx ~cat:"runtime" ~label:"file server body" (Time.us us) in
  [|
    (fun ctx args ->
      match args with
      | [ Marshal.V_text (Some name); Marshal.V_int offset; Marshal.V_bytes data ] ->
        body ctx 40;
        let b = get name in
        if Buffer.length b <> Int32.to_int offset then
          Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "non-append write unsupported");
        Buffer.add_bytes b data;
        []
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "write: bad args"));
    (fun ctx args ->
      match args with
      | [ Marshal.V_text (Some name); Marshal.V_int offset; Marshal.V_int length; _ ] ->
        body ctx 60;
        let b = get name in
        let offset = Int32.to_int offset and length = Int32.to_int length in
        let available = max 0 (min length (Buffer.length b - offset)) in
        [ Marshal.V_bytes (Bytes.of_string (Buffer.sub b offset available)) ]
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "read: bad args"));
    (fun ctx args ->
      match args with
      | [ Marshal.V_text (Some name); _ ] ->
        body ctx 20;
        [ Marshal.V_int (Int32.of_int (Buffer.length (get name))) ]
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "size: bad args"));
  |]

let run ~streaming =
  let config = { Hw.Config.default with Hw.Config.streaming_results = streaming } in
  let eng = Engine.create ~seed:11 () in
  let link = Hw.Ether_link.create eng ~mbps:10. in
  let server_m =
    Machine.create eng ~name:"fileserver" ~config ~link ~station:2
      ~ip:(Net.Ipv4.Addr.of_string "16.0.0.2") ()
  in
  let client_m =
    Machine.create eng ~name:"client" ~config ~link ~station:1
      ~ip:(Net.Ipv4.Addr.of_string "16.0.0.1") ()
  in
  let server_rt = Runtime.create (Rpc.Node.create server_m) ~space:1 in
  let client_rt = Runtime.create (Rpc.Node.create client_m) ~space:1 in
  let binder = Binder.create () in
  Binder.export binder server_rt file_intf ~impls:(make_impls ()) ~workers:2;
  let fs = Binder.import binder client_rt ~name:"FileServer" ~version:1 () in
  let gate = Sim.Gate.create eng in
  let report = ref [] in
  Machine.spawn_thread client_m ~name:"client" (fun () ->
      Cpu_set.with_cpu (Machine.cpus client_m) (fun ctx ->
          let client = Runtime.new_client client_rt in
          let call proc args = Runtime.call_by_name fs client ctx ~proc ~args in
          let payload = Workload.Test_interface.pattern file_size in
          (* Upload in single-packet chunks. *)
          let t0 = Engine.now eng in
          let offset = ref 0 in
          while !offset < file_size do
            let n = min chunk (file_size - !offset) in
            ignore
              (call "write"
                 [
                   Marshal.V_text (Some "big.dat");
                   Marshal.V_int (Int32.of_int !offset);
                   Marshal.V_bytes (Bytes.sub payload !offset n);
                 ]);
            offset := !offset + n
          done;
          let upload = Time.diff (Engine.now eng) t0 in
          (* Verify size. *)
          (match call "size" [ Marshal.V_text (Some "big.dat"); Marshal.V_int 0l ] with
          | [ Marshal.V_int n ] -> assert (Int32.to_int n = file_size)
          | _ -> assert false);
          (* Download in multi-packet blocks. *)
          let t1 = Engine.now eng in
          let back = Buffer.create file_size in
          let offset = ref 0 in
          while !offset < file_size do
            match
              call "read"
                [
                  Marshal.V_text (Some "big.dat");
                  Marshal.V_int (Int32.of_int !offset);
                  Marshal.V_int (Int32.of_int block);
                  Marshal.V_bytes Bytes.empty;
                ]
            with
            | [ Marshal.V_bytes data ] ->
              Buffer.add_bytes back data;
              offset := !offset + Bytes.length data
            | _ -> assert false
          done;
          let download = Time.diff (Engine.now eng) t1 in
          assert (Bytes.equal (Buffer.to_bytes back) payload);
          let mbps d = float_of_int (file_size * 8) /. Time.to_sec d /. 1e6 in
          report := [ (upload, mbps upload); (download, mbps download) ]);
      Sim.Gate.open_ gate);
  Engine.run_while eng (fun () -> not (Sim.Gate.is_open gate));
  match !report with
  | [ (up, up_mbps); (down, down_mbps) ] ->
    Printf.printf "  upload   64 KB in 1.4 KB chunks : %-10s %5.2f Mbit/s\n"
      (Time.span_to_string up) up_mbps;
    Printf.printf "  download 64 KB in 16 KB blocks  : %-10s %5.2f Mbit/s%s\n"
      (Time.span_to_string down) down_mbps
      (if streaming then "  (streamed fragments)" else "  (stop-and-wait fragments)")
  | _ -> print_endline "  transfer failed"

let () =
  print_endline "File transfer over Firefly RPC (64 KB each way, verified):";
  print_endline "with the paper's stop-and-wait multi-packet protocol:";
  run ~streaming:false;
  print_endline "with streamed (blast) result fragments:";
  run ~streaming:true
