(* Authenticated calls — the §7 "structural hooks for authenticated and
   secure calls", exercised.

     dune exec examples/secure_calls.exe

   A bank exports its interface under a shared key.  A legitimate
   client (holding the key) transacts; a rogue client without the key
   is rejected at dispatch; and with UDP checksums switched off and a
   corrupting wire, the authenticator still catches the damage —
   integrity becomes end-to-end at the security layer. *)

module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Idl = Rpc.Idl
module Marshal = Rpc.Marshal
module Runtime = Rpc.Runtime
module Binder = Rpc.Binder
module Secure = Rpc.Secure
module World = Workload.World

let key = Secure.key_of_string "the-branch-master-key-1989"

let bank =
  Idl.interface ~name:"Bank" ~version:1
    [
      Idl.proc "deposit"
        [
          Idl.arg "account" (Idl.T_text 32);
          Idl.arg "cents" Idl.T_int;
          Idl.arg ~mode:Idl.Var_out "balance" Idl.T_int;
        ];
      Idl.proc "balance"
        [ Idl.arg "account" (Idl.T_text 32); Idl.arg ~mode:Idl.Var_out "cents" Idl.T_int ];
    ]

let make_impls () : Runtime.impl array =
  let accounts : (string, int32) Hashtbl.t = Hashtbl.create 8 in
  let get a = Option.value (Hashtbl.find_opt accounts a) ~default:0l in
  [|
    (fun _ctx args ->
      match args with
      | [ Marshal.V_text (Some account); Marshal.V_int cents; _ ] ->
        let b = Int32.add (get account) cents in
        Hashtbl.replace accounts account b;
        [ Marshal.V_int b ]
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "deposit"));
    (fun _ctx args ->
      match args with
      | [ Marshal.V_text (Some account); _ ] -> [ Marshal.V_int (get account) ]
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "balance"));
  |]

let run_client (w : World.t) ~name ~auth f =
  let binding = Binder.import w.World.binder w.World.caller_rt ~name:"Bank" ~version:1 ?auth () in
  let gate = Sim.Gate.create w.World.eng in
  Machine.spawn_thread w.World.caller ~name (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Runtime.new_client w.World.caller_rt in
          f binding client ctx);
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate

let deposit binding client ctx account cents =
  Runtime.call_by_name binding client ctx ~proc:"deposit"
    ~args:[ Marshal.V_text (Some account); Marshal.V_int (Int32.of_int cents); Marshal.V_int 0l ]

let () =
  let w = World.create ~export_test:false () in
  Binder.export w.World.binder w.World.server_rt bank ~impls:(make_impls ()) ~workers:2 ~auth:key;

  print_endline "1. A client holding the key transacts normally (payloads sealed on the wire):";
  run_client w ~name:"teller" ~auth:(Some key) (fun binding client ctx ->
      (match deposit binding client ctx "mbrown" 125_00 with
      | [ Marshal.V_int b ] -> Printf.printf "   deposit $125.00 -> balance %ld cents\n" b
      | _ -> ());
      match deposit binding client ctx "mbrown" 17_50 with
      | [ Marshal.V_int b ] -> Printf.printf "   deposit  $17.50 -> balance %ld cents\n" b
      | _ -> ());

  print_endline "\n2. A rogue client without the key is refused at dispatch:";
  run_client w ~name:"rogue" ~auth:None (fun binding client ctx ->
      try ignore (deposit binding client ctx "mbrown" 999_99)
      with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Call_failed msg) ->
        Printf.printf "   rejected: %s\n" msg);

  print_endline "\n3. A client with the WRONG key is also refused:";
  run_client w ~name:"imposter" ~auth:(Some (Secure.key_of_string "guess")) (fun binding client ctx ->
      try ignore (deposit binding client ctx "mbrown" 1)
      with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Call_failed msg) ->
        Printf.printf "   rejected: %s\n" msg);

  print_endline
    "\n4. UDP checksums OFF + a wire corrupting payload bytes: the authenticator still catches it:";
  let cfg = { Hw.Config.default with Hw.Config.udp_checksums = false } in
  let w2 = World.create ~caller_config:cfg ~server_config:cfg ~export_test:false () in
  Binder.export w2.World.binder w2.World.server_rt bank ~impls:(make_impls ()) ~workers:2
    ~auth:key;
  let corrupt_once =
    let fired = ref false in
    fun (f : Bytes.t) ->
      if (not !fired) && Bytes.length f > 90 then begin
        fired := true;
        Hw.Ether_link.Corrupt_payload
      end
      else Hw.Ether_link.Deliver
  in
  Hw.Ether_link.set_fault_injector w2.World.link (Some corrupt_once);
  run_client w2 ~name:"teller2" ~auth:(Some key) (fun binding client ctx ->
      try ignore (deposit binding client ctx "mbrown" 50_00)
      with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Call_failed msg) ->
        Printf.printf "   corrupted call refused: %s\n" msg);
  Printf.printf "\n(the balance never moved for any rejected call: %d calls executed in scenario 4)\n"
    (Runtime.calls_served w2.World.server_rt)
