(** A mutable min-heap (pairing heap) used for the simulator event queue.

    The ordering is supplied at creation time as a [leq] relation.  Ties
    are resolved by the caller embedding a sequence number in the element
    and its [leq]; the heap itself makes no stability guarantee. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> 'a t
(** [create ~leq] is an empty heap ordered by [leq] (less-or-equal). *)

val add : 'a t -> 'a -> unit
(** [add h x] inserts [x].  O(1). *)

val peek : 'a t -> 'a option
(** [peek h] is the minimum element, if any, without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element.  Amortized
    O(log n). *)

val size : 'a t -> int
(** [size h] is the number of elements currently in the heap. *)

val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** [clear h] removes all elements. *)

val to_sorted_list : 'a t -> 'a list
(** [to_sorted_list h] drains the heap, returning all elements in
    ascending order.  The heap is empty afterwards.  Intended for tests. *)
