lib/sim/engine.ml: Effect Heap Printexc Printf Rng Stdlib Time Trace
