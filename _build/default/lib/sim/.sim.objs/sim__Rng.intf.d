lib/sim/rng.mli:
