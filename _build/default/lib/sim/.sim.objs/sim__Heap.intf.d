lib/sim/heap.mli:
