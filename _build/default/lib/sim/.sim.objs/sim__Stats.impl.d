lib/sim/stats.ml: Time
