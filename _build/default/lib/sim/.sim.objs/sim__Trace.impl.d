lib/sim/trace.ml: Hashtbl List String Time
