lib/sim/gate.mli: Engine
