lib/sim/condvar.mli: Engine Time
