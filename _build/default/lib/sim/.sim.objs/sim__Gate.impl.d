lib/sim/gate.ml: Condvar
