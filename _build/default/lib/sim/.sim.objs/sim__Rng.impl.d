lib/sim/rng.ml: Random
