lib/sim/time.ml: Float Format Int List Printf Stdlib
