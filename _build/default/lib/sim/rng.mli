(** Deterministic pseudo-random numbers for the simulator.

    A thin wrapper over [Random.State] with an explicit seed so that a
    simulation run is reproducible: the same seed and workload always
    produce the same event trace. *)

type t

val create : seed:int -> t

val split : t -> t
(** [split t] derives an independent generator from [t], so subsystems
    can draw randomness without perturbing each other's streams. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> p:float -> bool
(** [bool t ~p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution; used
    for background-load burst spacing and loss processes. *)
