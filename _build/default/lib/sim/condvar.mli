(** Condition variables for simulated processes.

    Unlike OS condition variables there is no associated mutex: the
    simulator is cooperatively scheduled, so the check-then-wait pattern
    is atomic between events.  Waking is FIFO. *)

type t

val create : Engine.t -> t

val await : t -> unit
(** Suspends the calling process until {!signal} or {!broadcast}. *)

val await_timeout : t -> timeout:Time.span -> [ `Signaled | `Timeout ]

val signal : t -> bool
(** Wakes the oldest live waiter.  Returns [false] if nobody was
    waiting (the signal is {e not} remembered). *)

val broadcast : t -> int
(** Wakes all current waiters; returns how many were woken. *)

val waiters : t -> int
(** Number of live waiters (stale timed-out entries excluded). *)
