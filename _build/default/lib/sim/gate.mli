(** A one-shot latch: processes wait until it opens; opening is
    remembered, so there is no lost-signal race between a worker
    finishing and a joiner arriving (unlike {!Condvar.signal}). *)

type t

val create : Engine.t -> t
val open_ : t -> unit
(** Opens the gate and wakes all waiters.  Idempotent. *)

val wait : t -> unit
(** Returns immediately if the gate is already open. *)

val is_open : t -> bool
