(** A FIFO mutex for simulated processes.

    Used to model kernel critical sections (e.g. the Nub scheduler lock)
    whose serialization is part of the RPC latency story.  Lock handoff
    is direct: on unlock the oldest waiter becomes the owner without the
    lock ever appearing free. *)

type t

val create : Engine.t -> t

val lock : t -> unit
(** Acquires the mutex, suspending until available. *)

val unlock : t -> unit
(** @raise Invalid_argument if the mutex is not locked. *)

val try_lock : t -> bool
val locked : t -> bool

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] runs [f] holding the mutex, releasing it on return
    or exception. *)
