(** Span tracing for latency accounting.

    The paper's Tables VI and VII are a per-step breakdown of where the
    time of one RPC goes.  To regenerate them, model code records a
    {e span} — a labelled interval of virtual time — for every fast-path
    step it executes.  Experiments then group spans by label and sum
    them, reproducing the paper's accounting from an actual simulated
    call rather than from constants.

    Tracing is off by default (the throughput experiments execute
    millions of steps); experiments enable it around a single call. *)

type span = {
  cat : string;  (** coarse grouping, e.g. ["send+receive"] or ["runtime"] *)
  label : string;  (** the paper's step name, e.g. ["wakeup RPC thread"] *)
  site : string;  (** machine/entity the time was spent on *)
  start_at : Time.t;
  stop_at : Time.t;
}

type t

val create : unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val add : t -> cat:string -> label:string -> site:string -> start_at:Time.t -> stop_at:Time.t -> unit
(** Records a span; a no-op while tracing is disabled. *)

val clear : t -> unit

val spans : t -> span list
(** All recorded spans, in recording order. *)

val duration : span -> Time.span

val total : ?site:string -> ?cat:string -> ?label:string -> t -> Time.span
(** [total t ~cat ~label ~site] sums the duration of spans matching all
    the given filters (an omitted filter matches everything). *)

val labels : ?cat:string -> t -> string list
(** Distinct labels in recording order of first appearance. *)
