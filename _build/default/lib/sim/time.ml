type t = int
type span = int

let zero = 0
let zero_span = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000

let us_f x =
  let v = x *. 1_000. in
  int_of_float (Float.round v)

let sec_f x = int_of_float (Float.round (x *. 1e9))
let add t d = t + d
let diff later earlier = later - earlier
let span_add a b = a + b
let span_sub a b = a - b
let span_scale f d = int_of_float (Float.round (f *. float_of_int d))
let span_sum l = List.fold_left ( + ) 0 l
let span_compare = Int.compare
let span_is_negative d = d < 0
let compare = Int.compare
let equal = Int.equal
let ( <= ) a b = Stdlib.( <= ) a b
let ( < ) a b = Stdlib.( < ) a b
let min = Stdlib.min
let max = Stdlib.max
let to_ns d = d
let to_us d = float_of_int d /. 1e3
let to_ms d = float_of_int d /. 1e6
let to_sec d = float_of_int d /. 1e9
let since_start_ns t = t
let since_start_us t = float_of_int t /. 1e3
let since_start_sec t = float_of_int t /. 1e9
let of_ns_since_start n = n
let pp fmt t = Format.fprintf fmt "%.6fs" (since_start_sec t)

let span_to_string d =
  let a = abs d in
  if a < 1_000 then Printf.sprintf "%dns" d
  else if a < 1_000_000 then Printf.sprintf "%.2fus" (to_us d)
  else if a < 1_000_000_000 then Printf.sprintf "%.3fms" (to_ms d)
  else Printf.sprintf "%.3fs" (to_sec d)

let pp_span fmt d = Format.pp_print_string fmt (span_to_string d)
