type t = { eng : Engine.t; mutable held : bool; q : unit Engine.waker Queue.t }

let create eng = { eng; held = false; q = Queue.create () }

let lock t =
  if not t.held then t.held <- true
  else Engine.suspend t.eng (fun w -> Queue.push w t.q)

let try_lock t =
  if t.held then false
  else begin
    t.held <- true;
    true
  end

let unlock t =
  if not t.held then invalid_arg "Mutex.unlock: not locked";
  let rec hand_off () =
    match Queue.take_opt t.q with
    | None -> t.held <- false
    | Some w -> if not (Engine.wake w ()) then hand_off ()
  in
  hand_off ()

let locked t = t.held

let with_lock t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f
