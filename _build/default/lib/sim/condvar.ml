type t = { eng : Engine.t; q : unit Engine.waker Queue.t }

let create eng = { eng; q = Queue.create () }
let await t = Engine.suspend t.eng (fun w -> Queue.push w t.q)

let await_timeout t ~timeout =
  let result =
    Engine.suspend_timeout t.eng ~timeout (fun w -> Queue.push w t.q)
  in
  match result with
  | Some () -> `Signaled
  | None -> `Timeout

(* Timed-out waiters stay in the queue as dead wakers; signal and
   broadcast discard them as they pass, so the queue stays bounded by
   the waiter arrival rate between wakeups. *)
let signal t =
  let rec loop () =
    match Queue.take_opt t.q with
    | None -> false
    | Some w -> if Engine.wake w () then true else loop ()
  in
  loop ()

let broadcast t =
  let rec loop n =
    match Queue.take_opt t.q with
    | None -> n
    | Some w -> loop (if Engine.wake w () then n + 1 else n)
  in
  loop 0

let waiters t = Queue.fold (fun n w -> if Engine.waker_dead w then n else n + 1) 0 t.q
