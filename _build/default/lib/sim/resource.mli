(** A k-server FIFO resource with priorities and utilization tracking.

    Models serially-shared hardware: the Ethernet medium (k = 1), the
    QBus (k = 1), a pool of identical CPUs (k = n; the Firefly CPU set
    with its CPU-0 affinity rules is a separate, richer model in the
    [hw] library).  Waiters are served FIFO within a priority class;
    higher priority classes are served first.

    The busy-server integral feeds the utilization figures the paper
    reports ("about 1.2 CPUs being used on the caller machine"). *)

type t

type priority = High | Normal

val create : Engine.t -> name:string -> capacity:int -> t

val name : t -> string
val capacity : t -> int

val acquire : ?priority:priority -> t -> unit
(** Takes one server, suspending while all are busy. *)

val try_acquire : t -> bool

val release : t -> unit
(** @raise Invalid_argument if no server is held. *)

val use : ?priority:priority -> t -> Time.span -> unit
(** [use t d] acquires a server, holds it for [d] of virtual time, and
    releases it (also on exception). *)

val in_use : t -> int
val queue_length : t -> int

val busy_server_seconds : t -> upto:Time.t -> float
(** Integral of busy servers over time, in server-seconds. *)

val utilization : t -> upto:Time.t -> float
(** Busy-server integral divided by [capacity * elapsed]; in [0, 1]. *)

val average_busy_servers : t -> upto:Time.t -> float
(** Time-averaged number of busy servers — the paper's "CPUs being
    used" metric when the resource models a CPU pool. *)
