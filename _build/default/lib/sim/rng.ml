type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x5DEECE66D |]
let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]
let int t bound = Random.State.int t bound
let float t bound = Random.State.float t bound
let bool t ~p = p > 0. && Random.State.float t 1.0 < p

let exponential t ~mean =
  (* Inverse-CDF sampling; guard the log argument away from 0. *)
  let u = 1.0 -. Random.State.float t 1.0 in
  -.mean *. log u
