type 'a t = {
  eng : Engine.t;
  items : 'a Queue.t;
  readers : 'a Engine.waker Queue.t;
}

let create eng = { eng; items = Queue.create (); readers = Queue.create () }

let send t v =
  (* Deliver directly to the oldest live reader, else buffer. *)
  let rec deliver () =
    match Queue.take_opt t.readers with
    | None -> Queue.push v t.items
    | Some w -> if not (Engine.wake w v) then deliver ()
  in
  deliver ()

let recv t =
  match Queue.take_opt t.items with
  | Some v -> v
  | None -> Engine.suspend t.eng (fun w -> Queue.push w t.readers)

let recv_timeout t ~timeout =
  match Queue.take_opt t.items with
  | Some v -> Some v
  | None -> Engine.suspend_timeout t.eng ~timeout (fun w -> Queue.push w t.readers)

let try_recv t = Queue.take_opt t.items
let length t = Queue.length t.items
let is_empty t = Queue.is_empty t.items
