(** An unbounded FIFO message queue between simulated processes.

    Models hardware and software queues whose occupancy we do not need
    to bound explicitly: controller descriptor rings, the datalink
    thread's input queue, per-address-space delivery queues. *)

type 'a t

val create : Engine.t -> 'a t

val send : 'a t -> 'a -> unit
(** Enqueues a message, waking one waiting receiver if any. *)

val recv : 'a t -> 'a
(** Dequeues the oldest message, suspending while empty. *)

val recv_timeout : 'a t -> timeout:Time.span -> 'a option
val try_recv : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool
