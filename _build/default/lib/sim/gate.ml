type t = { mutable opened : bool; cv : Condvar.t }

let create eng = { opened = false; cv = Condvar.create eng }

let open_ t =
  if not t.opened then begin
    t.opened <- true;
    ignore (Condvar.broadcast t.cv)
  end

let wait t = if not t.opened then Condvar.await t.cv
let is_open t = t.opened
