type span = {
  cat : string;
  label : string;
  site : string;
  start_at : Time.t;
  stop_at : Time.t;
}

type t = { mutable on : bool; mutable recorded : span list (* newest first *) }

let create () = { on = false; recorded = [] }
let enabled t = t.on
let set_enabled t b = t.on <- b

let add t ~cat ~label ~site ~start_at ~stop_at =
  if t.on then t.recorded <- { cat; label; site; start_at; stop_at } :: t.recorded

let clear t = t.recorded <- []
let spans t = List.rev t.recorded
let duration s = Time.diff s.stop_at s.start_at

let matches ?site ?cat ?label s =
  let ok filter field =
    match filter with
    | None -> true
    | Some v -> String.equal v field
  in
  ok site s.site && ok cat s.cat && ok label s.label

let total ?site ?cat ?label t =
  List.fold_left
    (fun acc s -> if matches ?site ?cat ?label s then Time.span_add acc (duration s) else acc)
    Time.zero_span t.recorded

let labels ?cat t =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun s ->
      if matches ?cat s && not (Hashtbl.mem seen s.label) then begin
        Hashtbl.add seen s.label ();
        Some s.label
      end
      else None)
    (spans t)
