(** Virtual time for the discrete-event simulator.

    Time is an absolute instant measured in integer nanoseconds since the
    start of the simulation; {!span} is a signed duration, also in
    nanoseconds.  Nanosecond resolution is needed because several hardware
    rates in the Firefly model are sub-microsecond per byte (e.g. the
    10 Mbit/s Ethernet serializes one byte every 800 ns). *)

type t
(** An absolute instant. *)

type span
(** A signed duration. *)

val zero : t
(** The simulation start instant. *)

val zero_span : span
(** The zero-length duration. *)

(** {1 Constructing durations} *)

val ns : int -> span
(** [ns n] is a duration of [n] nanoseconds. *)

val us : int -> span
(** [us n] is a duration of [n] microseconds. *)

val ms : int -> span
(** [ms n] is a duration of [n] milliseconds. *)

val sec : int -> span
(** [sec n] is a duration of [n] seconds. *)

val us_f : float -> span
(** [us_f x] is a duration of [x] microseconds, rounded to the nearest
    nanosecond.  Used by the calibrated cost models, which are linear fits
    with fractional per-byte slopes. *)

val sec_f : float -> span
(** [sec_f x] is a duration of [x] seconds, rounded to the nearest ns. *)

(** {1 Arithmetic} *)

val add : t -> span -> t
(** [add t d] is the instant [d] after [t]. *)

val diff : t -> t -> span
(** [diff later earlier] is the duration from [earlier] to [later]. *)

val span_add : span -> span -> span
val span_sub : span -> span -> span
val span_scale : float -> span -> span
val span_sum : span list -> span
val span_compare : span -> span -> int
val span_is_negative : span -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Conversions} *)

val to_ns : span -> int
val to_us : span -> float
val to_ms : span -> float
val to_sec : span -> float
val since_start_ns : t -> int
val since_start_us : t -> float
val since_start_sec : t -> float
val of_ns_since_start : int -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Prints an instant as seconds with microsecond precision. *)

val pp_span : Format.formatter -> span -> unit
(** Prints a duration using an adaptive unit (ns, us, ms or s). *)

val span_to_string : span -> string
