type priority = High | Normal

type t = {
  eng : Engine.t;
  res_name : string;
  cap : int;
  mutable busy : int;
  hi : unit Engine.waker Queue.t;
  lo : unit Engine.waker Queue.t;
  level : Stats.Level.t;
}

let create eng ~name ~capacity =
  if capacity <= 0 then invalid_arg "Resource.create: capacity must be positive";
  {
    eng;
    res_name = name;
    cap = capacity;
    busy = 0;
    hi = Queue.create ();
    lo = Queue.create ();
    level = Stats.Level.create ~initial:0. ~at:(Engine.now eng);
  }

let name t = t.res_name
let capacity t = t.cap

let set_busy t n =
  t.busy <- n;
  Stats.Level.set t.level (float_of_int n) ~at:(Engine.now t.eng)

let acquire ?(priority = Normal) t =
  if t.busy < t.cap then set_busy t (t.busy + 1)
  else
    let q =
      match priority with
      | High -> t.hi
      | Normal -> t.lo
    in
    Engine.suspend t.eng (fun w -> Queue.push w q)

let try_acquire t =
  if t.busy < t.cap then begin
    set_busy t (t.busy + 1);
    true
  end
  else false

(* On release, hand the server to the oldest live high-priority waiter,
   else normal-priority; occupancy is unchanged during a handoff. *)
let release t =
  if t.busy <= 0 then invalid_arg "Resource.release: not acquired";
  let rec hand_off q fallback =
    match Queue.take_opt q with
    | Some w -> if Engine.wake w () then `Handed else hand_off q fallback
    | None -> (
      match fallback with
      | Some q' -> hand_off q' None
      | None -> `Free)
  in
  match hand_off t.hi (Some t.lo) with
  | `Handed -> ()
  | `Free -> set_busy t (t.busy - 1)

let use ?priority t d =
  acquire ?priority t;
  Fun.protect ~finally:(fun () -> release t) (fun () -> Engine.delay t.eng d)

let in_use t = t.busy

let live q = Queue.fold (fun n w -> if Engine.waker_dead w then n else n + 1) 0 q
let queue_length t = live t.hi + live t.lo
let busy_server_seconds t ~upto = Stats.Level.integral t.level ~upto

let utilization t ~upto =
  let avg = Stats.Level.average t.level ~upto in
  avg /. float_of_int t.cap

let average_busy_servers t ~upto = Stats.Level.average t.level ~upto
