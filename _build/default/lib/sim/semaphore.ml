type t = { eng : Engine.t; mutable count : int; q : unit Engine.waker Queue.t }

let create eng ~initial =
  if initial < 0 then invalid_arg "Semaphore.create: negative initial";
  { eng; count = initial; q = Queue.create () }

let acquire t =
  if t.count > 0 then t.count <- t.count - 1
  else Engine.suspend t.eng (fun w -> Queue.push w t.q)

let try_acquire t =
  if t.count > 0 then begin
    t.count <- t.count - 1;
    true
  end
  else false

let release t =
  (* Hand the unit directly to a waiter if there is a live one. *)
  let rec hand_off () =
    match Queue.take_opt t.q with
    | None -> t.count <- t.count + 1
    | Some w -> if not (Engine.wake w ()) then hand_off ()
  in
  hand_off ()

let value t = t.count
