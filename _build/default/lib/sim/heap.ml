type 'a tree = Empty | Node of 'a * 'a tree list

type 'a t = {
  leq : 'a -> 'a -> bool;
  mutable root : 'a tree;
  mutable size : int;
}

let create ~leq = { leq; root = Empty; size = 0 }

let merge leq a b =
  match a, b with
  | Empty, t | t, Empty -> t
  | Node (x, xs), Node (y, ys) ->
    if leq x y then Node (x, b :: xs) else Node (y, a :: ys)

let add h x =
  h.root <- merge h.leq h.root (Node (x, []));
  h.size <- h.size + 1

let peek h =
  match h.root with
  | Empty -> None
  | Node (x, _) -> Some x

(* Two-pass pairing: first pass merges adjacent pairs, second pass folds
   right-to-left.  This gives the amortized O(log n) delete-min bound. *)
let rec merge_pairs leq = function
  | [] -> Empty
  | [ t ] -> t
  | a :: b :: rest -> merge leq (merge leq a b) (merge_pairs leq rest)

let pop h =
  match h.root with
  | Empty -> None
  | Node (x, children) ->
    h.root <- merge_pairs h.leq children;
    h.size <- h.size - 1;
    Some x

let size h = h.size
let is_empty h = h.size = 0

let clear h =
  h.root <- Empty;
  h.size <- 0

let to_sorted_list h =
  let rec drain acc =
    match pop h with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  drain []
