(** Counting semaphore for simulated processes.

    Models bounded pools — e.g. DEQNA receive buffer credits, or a
    bounded server-thread pool.  FIFO wakeup order. *)

type t

val create : Engine.t -> initial:int -> t
(** [initial] must be >= 0. *)

val acquire : t -> unit
(** Takes one unit, suspending while the count is zero. *)

val try_acquire : t -> bool
val release : t -> unit
val value : t -> int
