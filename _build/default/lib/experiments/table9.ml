module Time = Sim.Time
module Config = Hw.Config
module Driver = Workload.Driver

type row = {
  version : string;
  paper_us : float;
  measured_us : float;
  null_latency_us : float;
}

let versions =
  [
    ("Original Modula-2+", Config.Original_modula2, 758.);
    ("Final Modula-2+", Config.Final_modula2, 547.);
    ("Assembly language", Config.Assembly, 177.);
  ]

let run () =
  List.map
    (fun (version, code, paper_us) ->
      let config = { Config.default with interrupt_code = code } in
      let timing = Hw.Timing.create config in
      let lat =
        Exp_common.single_call ~caller_config:config ~server_config:config ~proc:Driver.Null ()
      in
      {
        version;
        paper_us;
        measured_us = Time.to_us (Hw.Timing.rx_demux timing);
        null_latency_us = Time.to_us lat;
      })
    versions

let table () =
  Report.Table.make ~id:"table9" ~title:"Execution time of the Ethernet interrupt main path"
    ~columns:[ "version"; "paper us"; "sim us"; "Null() latency us" ]
    ~notes:
      [
        "the interrupt path runs twice per RPC, so each 100 us saved in it saves ~200 us per call";
      ]
    (List.map
       (fun r ->
         [
           r.version;
           Report.Table.cell_f ~decimals:0 r.paper_us;
           Report.Table.cell_f ~decimals:0 r.measured_us;
           Report.Table.cell_f ~decimals:0 r.null_latency_us;
         ])
       (run ()))
