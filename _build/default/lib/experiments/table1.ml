module Driver = Workload.Driver

type row = {
  threads : int;
  null_seconds : float;
  null_rps : float;
  maxr_seconds : float;
  maxr_mbps : float;
}

let paper =
  [
    { threads = 1; null_seconds = 26.61; null_rps = 375.; maxr_seconds = 63.47; maxr_mbps = 1.82 };
    { threads = 2; null_seconds = 16.80; null_rps = 595.; maxr_seconds = 35.28; maxr_mbps = 3.28 };
    { threads = 3; null_seconds = 16.26; null_rps = 615.; maxr_seconds = 27.28; maxr_mbps = 4.25 };
    { threads = 4; null_seconds = 15.45; null_rps = 647.; maxr_seconds = 24.93; maxr_mbps = 4.65 };
    { threads = 5; null_seconds = 15.11; null_rps = 662.; maxr_seconds = 24.69; maxr_mbps = 4.69 };
    { threads = 6; null_seconds = 14.69; null_rps = 680.; maxr_seconds = 24.65; maxr_mbps = 4.70 };
    { threads = 7; null_seconds = 13.49; null_rps = 741.; maxr_seconds = 24.72; maxr_mbps = 4.69 };
    { threads = 8; null_seconds = 13.67; null_rps = 732.; maxr_seconds = 24.68; maxr_mbps = 4.69 };
  ]

let measure_row ~calls threads =
  let null = Exp_common.throughput ~threads ~calls ~proc:Driver.Null () in
  let maxr = Exp_common.throughput ~threads ~calls ~proc:Driver.Max_result () in
  {
    threads;
    null_seconds = Exp_common.seconds_per_10000 null;
    null_rps = null.Driver.rpcs_per_sec;
    maxr_seconds = Exp_common.seconds_per_10000 maxr;
    maxr_mbps = maxr.Driver.megabits_per_sec;
  }

let run ?(calls = 10000) () = List.map (fun p -> measure_row ~calls p.threads) paper

let table ?calls () =
  let measured = run ?calls () in
  let rows =
    List.map2
      (fun p m ->
        [
          string_of_int p.threads;
          Report.Table.compare_cell ~paper:p.null_seconds ~measured:m.null_seconds;
          Report.Table.compare_cell ~paper:p.null_rps ~measured:m.null_rps;
          Report.Table.compare_cell ~paper:p.maxr_seconds ~measured:m.maxr_seconds;
          Report.Table.compare_cell ~paper:p.maxr_mbps ~measured:m.maxr_mbps;
        ])
      paper measured
  in
  Report.Table.make ~id:"table1" ~title:"Time for 10000 RPCs (paper / measured)"
    ~columns:
      [ "threads"; "Null secs/10k"; "Null RPC/s"; "MaxResult secs/10k"; "MaxResult Mbit/s" ]
    ~notes:
      [
        "paper: two 5-CPU Fireflies, private 10 Mbit/s Ethernet, IP/UDP with checksums";
        "cells are paper-value / simulated-value (relative error)";
      ]
    rows

let cpu_utilization_note ?(calls = 10000) () =
  let o = Exp_common.throughput ~threads:4 ~calls ~proc:Driver.Max_result () in
  Printf.sprintf
    "CPUs used at max throughput: caller %.2f, server %.2f (paper: ~1.2 caller, slightly less server)"
    o.Driver.caller_busy_cpus o.Driver.server_busy_cpus
