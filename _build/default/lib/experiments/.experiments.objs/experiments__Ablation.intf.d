lib/experiments/ablation.mli: Report
