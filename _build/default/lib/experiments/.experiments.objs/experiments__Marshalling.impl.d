lib/experiments/marshalling.ml: Bytes Hashtbl Hw Lazy List Nub Printf Report Rpc Sim String Workload
