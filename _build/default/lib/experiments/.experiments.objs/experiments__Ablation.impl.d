lib/experiments/ablation.ml: Exp_common Hw List Report Sim Workload
