lib/experiments/marshalling.mli: Report
