lib/experiments/table12.ml: Exp_common List Report Sim Workload
