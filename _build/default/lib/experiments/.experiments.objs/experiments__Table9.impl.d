lib/experiments/table9.ml: Exp_common Hw List Report Sim Workload
