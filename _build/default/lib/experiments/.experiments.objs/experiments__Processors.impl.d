lib/experiments/processors.ml: Exp_common Hw List Report Workload
