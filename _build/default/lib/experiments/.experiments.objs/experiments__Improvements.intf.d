lib/experiments/improvements.mli: Report
