lib/experiments/section5.ml: Exp_common Hw List Report Sim Workload
