lib/experiments/registry.ml: Ablation Breakdown Extensions Improvements List Marshalling Processors Report Section5 String Table1 Table12 Table9
