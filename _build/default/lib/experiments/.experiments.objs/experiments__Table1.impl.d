lib/experiments/table1.ml: Exp_common List Printf Report Workload
