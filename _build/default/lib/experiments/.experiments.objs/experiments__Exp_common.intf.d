lib/experiments/exp_common.mli: Hw Sim Workload
