lib/experiments/improvements.ml: Exp_common Hw List Report Sim Workload
