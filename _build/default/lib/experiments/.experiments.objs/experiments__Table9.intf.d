lib/experiments/table9.mli: Report
