lib/experiments/exp_common.ml: Hw Workload
