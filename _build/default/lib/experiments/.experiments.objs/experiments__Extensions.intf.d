lib/experiments/extensions.mli: Report Workload
