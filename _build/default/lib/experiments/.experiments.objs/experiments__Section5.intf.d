lib/experiments/section5.mli: Report
