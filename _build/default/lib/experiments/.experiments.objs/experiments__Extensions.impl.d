lib/experiments/extensions.ml: Bytes Exp_common Hw Int32 List Net Nub Printf Report Rpc Sim Wire Workload
