lib/experiments/breakdown.mli: Report
