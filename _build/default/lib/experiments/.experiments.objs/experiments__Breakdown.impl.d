lib/experiments/breakdown.ml: Bytes Hw Int32 Lazy List Nub Report Rpc Sim String Workload
