lib/experiments/processors.mli: Report
