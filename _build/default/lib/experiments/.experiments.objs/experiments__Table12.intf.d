lib/experiments/table12.mli: Report
