(** Ablation of §3.2's central design choice: demultiplexing RPC packets
    {e in the Ethernet interrupt routine} and waking the RPC thread
    directly, versus the "traditional approach" of waking a datalink
    thread to demultiplex — which, as the paper says, "doubles the
    number of wakeups required for an RPC".  The ablation runs the whole
    system both ways and reports what the design choice bought. *)

type row = {
  variant : string;
  null_us : float;
  maxr_us : float;
  null_rps_7 : float;  (** 7-thread Null() saturation *)
}

val run : ?quick:bool -> unit -> row list
val table : ?quick:bool -> unit -> Report.Table.t
