(** Extension experiments beyond the paper's tables.

    The paper measured one caller machine against one server.  These
    experiments exercise regimes the paper only gestures at: several
    client {e machines} sharing the Ethernet and one server (§6 hints at
    file servers), and the §4.1 footnote's observation that the
    controller's saturated reception rate exceeds its transmission
    rate. *)

type client_row = {
  client_machines : int;
  total_rps : float;
  total_mbps : float;
  server_busy_cpus : float;
  wire_utilization : float;
}

val multi_client : ?calls_per_client:int -> proc:Workload.Driver.proc -> unit -> client_row list
(** 1–4 client machines, each running 2 caller threads against the one
    server. *)

type saturation = {
  tx_frames_per_sec : float;
  rx_frames_per_sec : float;
  rx_over_tx : float;  (** the paper's footnote says ~1.4 *)
}

val controller_saturation : unit -> saturation
(** Transmission: one DEQNA draining a long queue of 1514-byte frames.
    Reception: two senders saturating one receiver. *)

type tail_row = {
  tail_threads : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

val latency_tails : ?calls:int -> unit -> tail_row list
(** Per-call Null() latency distribution as load grows — queueing at
    the serialized CPU-0 work spreads the tail long before the mean
    moves.  The paper reports only aggregates; this is the modern
    latency-engineering view of the same machine. *)

type transport_row = { transport : string; null_latency_us : float }

val transport_comparison : unit -> transport_row list
(** The §3.1 bind-time transport choice, measured: the same trivial call
    through shared memory, the custom IP/UDP packet-exchange protocol,
    and a DECNet session.  The ordering (local ≪ custom ≪ general
    transport) is the design argument for the custom fast path. *)

val tables : ?quick:bool -> unit -> Report.Table.t list
