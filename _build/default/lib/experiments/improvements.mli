(** §4.2 — "Speculations on future improvements", executed.

    The paper {e estimates} what each change would save; here each change
    is a configuration away, so we re-simulate the system with it applied
    and measure the actual saving on Null() and MaxResult(b) latency.
    Agreement validates both the paper's arithmetic and the model. *)

type row = {
  change : string;
  paper_null_saving_us : float;
  paper_maxr_saving_us : float;
  sim_null_saving_us : float;
  sim_maxr_saving_us : float;
}

val run : unit -> row list
val table : unit -> Report.Table.t
