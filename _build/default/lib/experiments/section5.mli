(** §5 beyond the two tables: the uniprocessor lost-packet bug, and the
    streaming transfer strategy the paper speculates would help
    uniprocessor throughput. *)

type bug_row = {
  variant : string;
  mean_null_ms : float;
  retransmissions : int;
}

val uniproc_bug : ?calls:int -> unit -> bug_row list
(** Null() on uniprocessor caller and server, with and without the
    swapped-lines fix.  Without it, the race loses ~1 packet/second and
    each loss costs a ~600 ms retransmission wait; the paper observed
    calls averaging "around 20 milliseconds". *)

type streaming_row = {
  strategy : string;
  mbps : float;
  wakeups_per_kb : float;
}

val streaming : ?calls:int -> unit -> streaming_row list
(** Server-to-caller bulk transfer on uniprocessor machines: 4 threads
    of single-packet MaxResult(b) calls (the paper's approach) vs one
    thread fetching 20 KB per call with stop-and-wait fragments vs the
    same with streamed (blast) fragments — Amoeba/V/Sprite style. *)

val tables : ?quick:bool -> unit -> Report.Table.t list
