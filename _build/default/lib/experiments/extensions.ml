module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Config = Hw.Config
module Driver = Workload.Driver
module World = Workload.World

type client_row = {
  client_machines : int;
  total_rps : float;
  total_mbps : float;
  server_busy_cpus : float;
  wire_utilization : float;
}

let multi_client ?(calls_per_client = 800) ~proc () =
  let threads_per_client = 2 in
  let run n_clients =
    let w = World.create () in
    (* Extra client machines beyond the built-in caller. *)
    let extra =
      List.init (n_clients - 1) (fun i ->
          let m, _node, rt =
            World.add_machine w
              ~name:(Printf.sprintf "client%d" (i + 2))
              ~config:Config.default ~station:(10 + i)
              ~ip:(Printf.sprintf "16.0.0.%d" (10 + i))
          in
          (m, rt))
    in
    let gate = Sim.Gate.create w.World.eng in
    let total = n_clients * calls_per_client in
    let finished = ref 0 in
    let threads_total = n_clients * threads_per_client in
    let start_client machine rt =
      let binding = Rpc.Binder.import w.World.binder rt ~name:"Test" ~version:1 () in
      for _ = 1 to threads_per_client do
        Machine.spawn_thread machine ~name:"client-thread" (fun () ->
            Cpu_set.with_cpu (Machine.cpus machine) (fun ctx ->
                let client = Rpc.Runtime.new_client rt in
                for _ = 1 to calls_per_client / threads_per_client do
                  ignore
                    (Rpc.Runtime.call binding client ctx
                       ~proc_idx:
                         (match proc with
                         | Driver.Null -> Workload.Test_interface.null_idx
                         | Driver.Max_result -> Workload.Test_interface.max_result_idx
                         | Driver.Max_arg -> Workload.Test_interface.max_arg_idx
                         | Driver.Get_data _ -> Workload.Test_interface.get_data_idx)
                       ~args:
                         (match proc with
                         | Driver.Null -> []
                         | Driver.Max_result -> [ Rpc.Marshal.V_bytes Bytes.empty ]
                         | Driver.Max_arg ->
                           [ Rpc.Marshal.V_bytes (Workload.Test_interface.pattern 1440) ]
                         | Driver.Get_data n ->
                           [ Rpc.Marshal.V_int (Int32.of_int n); Rpc.Marshal.V_bytes Bytes.empty ]))
                done);
            incr finished;
            if !finished = threads_total then Sim.Gate.open_ gate)
      done
    in
    start_client w.World.caller w.World.caller_rt;
    List.iter (fun (m, rt) -> start_client m rt) extra;
    let t0 = Engine.now w.World.eng in
    World.run_until_quiet w gate;
    let elapsed = Time.to_sec (Time.diff (Engine.now w.World.eng) t0) in
    {
      client_machines = n_clients;
      total_rps = float_of_int total /. elapsed;
      total_mbps = float_of_int (total * Driver.payload_bytes proc * 8) /. elapsed /. 1e6;
      server_busy_cpus = Machine.average_busy_cpus w.World.server ~upto:(Engine.now w.World.eng);
      wire_utilization = Hw.Ether_link.utilization w.World.link ~upto:(Engine.now w.World.eng);
    }
  in
  List.map run [ 1; 2; 3; 4 ]

type saturation = {
  tx_frames_per_sec : float;
  rx_frames_per_sec : float;
  rx_over_tx : float;
}

let controller_saturation () =
  let timing = Hw.Timing.create Config.default in
  let frames = 300 in
  let frame_of ~src ~dst =
    let w = Wire.Bytebuf.Writer.create Net.Ethernet.max_frame_size in
    Net.Ethernet.encode w
      { Net.Ethernet.dst; src; ethertype = Net.Ethernet.ethertype_ipv4 };
    Wire.Bytebuf.Writer.zeros w (Net.Ethernet.max_frame_size - Net.Ethernet.header_size);
    Wire.Bytebuf.Writer.contents w
  in
  (* Transmission: one controller drains a long queue. *)
  let tx_rate =
    let eng = Engine.create () in
    let link = Hw.Ether_link.create eng ~mbps:10. in
    let qbus = Sim.Resource.create eng ~name:"qbus" ~capacity:1 in
    let a = Hw.Deqna.create eng timing ~link ~qbus ~mac:(Net.Mac.of_station 1) () in
    (* a sink station so frames are deliverable *)
    ignore
      (Hw.Ether_link.attach link ~mac:(Net.Mac.of_station 2)
         ~on_frame_start:(fun ~frame:_ ~wire:_ -> ()));
    let payload = frame_of ~src:(Net.Mac.of_station 1) ~dst:(Net.Mac.of_station 2) in
    for _ = 1 to frames do
      Hw.Deqna.queue_tx a payload
    done;
    Hw.Deqna.start_transmit a;
    Engine.run_while eng (fun () -> Hw.Deqna.tx_frames a < frames);
    float_of_int frames /. Time.since_start_sec (Engine.now eng)
  in
  (* Reception: two senders saturate one receiver. *)
  let rx_rate =
    let eng = Engine.create () in
    let link = Hw.Ether_link.create eng ~mbps:10. in
    let mk n =
      let qbus = Sim.Resource.create eng ~name:(Printf.sprintf "qbus%d" n) ~capacity:1 in
      Hw.Deqna.create eng timing ~link ~qbus ~mac:(Net.Mac.of_station n) ()
    in
    let s1 = mk 1 and s2 = mk 2 and rx = mk 3 in
    let drained = ref 0 in
    let last_drain = ref Time.zero in
    Hw.Deqna.set_interrupt_handler rx (fun () ->
        let rec drain () =
          match Hw.Deqna.take_rx rx with
          | Some _ ->
            incr drained;
            last_drain := Engine.now eng;
            Hw.Deqna.add_rx_credits rx 1;
            drain ()
          | None -> ()
        in
        drain ();
        Hw.Deqna.interrupt_done rx);
    Hw.Deqna.add_rx_credits rx 64;
    let dst = Net.Mac.of_station 3 in
    List.iter
      (fun (s, src) ->
        let payload = frame_of ~src ~dst in
        for _ = 1 to frames do
          Hw.Deqna.queue_tx s payload
        done;
        Hw.Deqna.start_transmit s)
      [ (s1, Net.Mac.of_station 1); (s2, Net.Mac.of_station 2) ];
    Engine.run_until eng (Time.add Time.zero (Time.sec 5));
    (* Rate over the active reception window, not the idle tail. *)
    float_of_int !drained /. Time.since_start_sec !last_drain
  in
  { tx_frames_per_sec = tx_rate; rx_frames_per_sec = rx_rate; rx_over_tx = rx_rate /. tx_rate }

type tail_row = {
  tail_threads : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

let latency_tails ?(calls = 4000) () =
  List.map
    (fun threads ->
      let o = Exp_common.throughput ~threads ~calls ~proc:Driver.Null () in
      let p q = Time.to_ms (Driver.percentile o q) in
      { tail_threads = threads; p50_ms = p 0.5; p90_ms = p 0.9; p99_ms = p 0.99; max_ms = p 1.0 })
    [ 1; 2; 4; 7 ]

type transport_row = { transport : string; null_latency_us : float }

let nullish =
  Rpc.Idl.interface ~name:"Nullish" ~version:1 [ Rpc.Idl.proc "null" [] ]

let nullish_impls : Rpc.Runtime.impl array =
  [|
    (fun ctx _ ->
      Cpu_set.charge ctx ~cat:"runtime" ~label:"Null (the server procedure)" (Time.us 10);
      []);
  |]

let measure_transport ~transport =
  let w = World.create ~export_test:false () in
  let server_rt =
    match transport with
    | `Local -> w.World.caller_rt (* same machine: binder picks shared memory *)
    | `Udp | `Decnet -> w.World.server_rt
  in
  Rpc.Binder.export w.World.binder server_rt nullish ~impls:nullish_impls ~workers:2;
  let tr =
    match transport with
    | `Local | `Udp -> `Auto
    | `Decnet -> `Decnet
  in
  let binding =
    Rpc.Binder.import w.World.binder w.World.caller_rt ~name:"Nullish" ~version:1 ~transport:tr ()
  in
  let gate = Sim.Gate.create w.World.eng in
  let lat = ref 0. in
  Machine.spawn_thread w.World.caller ~name:"transport-bench" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Rpc.Runtime.new_client w.World.caller_rt in
          let once () = ignore (Rpc.Runtime.call_by_name binding client ctx ~proc:"null" ~args:[]) in
          once ();
          once ();
          let t0 = Engine.now w.World.eng in
          once ();
          lat := Time.to_us (Time.diff (Engine.now w.World.eng) t0));
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate;
  !lat

let transport_comparison () =
  [
    { transport = "shared memory (same machine)"; null_latency_us = measure_transport ~transport:`Local };
    { transport = "custom protocol on IP/UDP"; null_latency_us = measure_transport ~transport:`Udp };
    { transport = "DECNet session"; null_latency_us = measure_transport ~transport:`Decnet };
  ]

let tables ?(quick = false) () =
  let calls_per_client = if quick then 150 else 800 in
  let rows = multi_client ~calls_per_client ~proc:Driver.Max_result () in
  let sat = controller_saturation () in
  [
    Report.Table.make ~id:"multi-client"
      ~title:"Extension: several client machines against one server (MaxResult)"
      ~columns:[ "clients"; "total RPC/s"; "Mbit/s"; "server CPUs"; "wire util %" ]
      ~notes:
        [
          "each client machine runs 2 caller threads; the server and the shared wire become the bottleneck";
        ]
      (List.map
         (fun r ->
           [
             string_of_int r.client_machines;
             Report.Table.cell_f ~decimals:0 r.total_rps;
             Report.Table.cell_f ~decimals:2 r.total_mbps;
             Report.Table.cell_f r.server_busy_cpus;
             Report.Table.cell_f ~decimals:0 (100. *. r.wire_utilization);
           ])
         rows);
    Report.Table.make ~id:"controller-saturation"
      ~title:"Extension: DEQNA saturated transmission vs reception (1514-byte frames)"
      ~columns:[ "direction"; "frames/s" ]
      ~notes:
        [
          Printf.sprintf
            "reception / transmission = %.2f; the paper's footnote (section 4.1) reports ~1.4 — the model agrees on the direction but overlaps reception more than the real DEQNA did (see Timing.deqna_rx_recovery)"
            sat.rx_over_tx;
        ]
      [
        [ "transmission (queue drain)"; Report.Table.cell_f ~decimals:0 sat.tx_frames_per_sec ];
        [ "reception (two senders)"; Report.Table.cell_f ~decimals:0 sat.rx_frames_per_sec ];
      ];
    Report.Table.make ~id:"latency-tails"
      ~title:"Extension: Null() latency distribution under load (ms)"
      ~columns:[ "threads"; "p50"; "p90"; "p99"; "max" ]
      ~notes:
        [
          "queueing on the serialized CPU-0 interrupt/scheduler work stretches the tail as offered load approaches the ~740/s ceiling";
        ]
      (List.map
         (fun r ->
           [
             string_of_int r.tail_threads;
             Report.Table.cell_f r.p50_ms;
             Report.Table.cell_f r.p90_ms;
             Report.Table.cell_f r.p99_ms;
             Report.Table.cell_f r.max_ms;
           ])
         (latency_tails ~calls:(if quick then 600 else 4000) ()));
    Report.Table.make ~id:"transports"
      ~title:"Extension: the bind-time transport choice, measured (trivial call)"
      ~columns:[ "transport"; "latency us" ]
      ~notes:
        [
          "the paper's three transports (section 3.1); its own figures: local 937 us, custom protocol 2660 us";
          "the general-purpose DECNet path is the baseline the custom fast path was built to beat";
        ]
      (List.map
         (fun r -> [ r.transport; Report.Table.cell_f ~decimals:0 r.null_latency_us ])
         (transport_comparison ()));
  ]
