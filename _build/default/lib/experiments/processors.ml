module Driver = Workload.Driver
module Config = Hw.Config

type latency_row = {
  caller_cpus : int;
  server_cpus : int;
  paper_sec_per_1000 : float;
  measured_sec_per_1000 : float;
}

let table10_points =
  [
    (5, 5, 2.69);
    (4, 5, 2.73);
    (3, 5, 2.85);
    (2, 5, 2.98);
    (1, 5, 3.96);
    (1, 4, 3.98);
    (1, 3, 4.13);
    (1, 2, 4.21);
    (1, 1, 4.81);
  ]

let table10 ?(calls = 1000) () =
  List.map
    (fun (c, s, paper) ->
      let o =
        Exp_common.throughput
          ~caller_config:(Exp_common.exerciser ~cpus:c)
          ~server_config:(Exp_common.exerciser ~cpus:s)
          ~threads:1 ~calls ~proc:Driver.Null ()
      in
      {
        caller_cpus = c;
        server_cpus = s;
        paper_sec_per_1000 = paper;
        measured_sec_per_1000 = Exp_common.seconds_per_10000 o /. 10.;
      })
    table10_points

type throughput_row = {
  t_caller_cpus : int;
  t_server_cpus : int;
  t_threads : int;
  paper_mbps : float;
  measured_mbps : float;
}

let table11_points =
  [
    (5, 5, [ 2.0; 3.4; 4.6; 4.7; 4.7 ]);
    (1, 5, [ 1.5; 2.3; 2.7; 2.7; 2.7 ]);
    (1, 1, [ 1.3; 2.0; 2.4; 2.5; 2.5 ]);
  ]

let table11 ?(calls_per_thread = 1000) () =
  List.concat_map
    (fun (c, s, papers) ->
      List.mapi
        (fun i paper ->
          let threads = i + 1 in
          let o =
            Exp_common.throughput
              ~caller_config:(Exp_common.exerciser ~cpus:c)
              ~server_config:(Exp_common.exerciser ~cpus:s)
              ~threads
              ~calls:(calls_per_thread * threads)
              ~proc:Driver.Max_result ()
          in
          {
            t_caller_cpus = c;
            t_server_cpus = s;
            t_threads = threads;
            paper_mbps = paper;
            measured_mbps = o.Driver.megabits_per_sec;
          })
        papers)
    table11_points

let tables ?(quick = false) () =
  let calls = if quick then 200 else 1000 in
  let t10 = table10 ~calls () in
  let t11 = table11 ~calls_per_thread:(if quick then 100 else 1000) () in
  [
    Report.Table.make ~id:"table10" ~title:"Calls to Null() with varying numbers of processors"
      ~columns:[ "caller CPUs"; "server CPUs"; "paper s/1000"; "sim s/1000" ]
      ~notes:[ "RPC Exerciser (hand stubs), swapped-lines fix installed, 1 caller thread" ]
      (List.map
         (fun r ->
           [
             string_of_int r.caller_cpus;
             string_of_int r.server_cpus;
             Report.Table.cell_f r.paper_sec_per_1000;
             Report.Table.cell_f r.measured_sec_per_1000;
           ])
         t10);
    Report.Table.make ~id:"table11"
      ~title:"Throughput of MaxResult(b) with varying numbers of processors (Mbit/s)"
      ~columns:[ "caller CPUs"; "server CPUs"; "threads"; "paper Mbit/s"; "sim Mbit/s" ]
      ~notes:[ "RPC Exerciser stubs; 1000 calls per thread" ]
      (List.map
         (fun r ->
           [
             string_of_int r.t_caller_cpus;
             string_of_int r.t_server_cpus;
             string_of_int r.t_threads;
             Report.Table.cell_f ~decimals:1 r.paper_mbps;
             Report.Table.cell_f ~decimals:1 r.measured_mbps;
           ])
         t11);
  ]
