(** Tables VI–VIII — the paper's microsecond-by-microsecond accounting,
    regenerated from the {e trace of an actual simulated call} rather
    than echoed constants: the experiment warms the fast path, enables
    span tracing, runs one Null() and one MaxResult(b) call, and groups
    the recorded spans under the paper's step names. *)

type step = {
  step_label : string;
  paper_small_us : float;  (** 74-byte packet column *)
  paper_large_us : float option;  (** 1514-byte column, when different *)
  measured_small_us : float;
  measured_large_us : float;
}

val table6 : unit -> step list
(** The send+receive operation.  The 74-byte column is traced from the
    call packet of a Null() RPC, the 1514-byte column from the result
    packet of a MaxResult(b) RPC. *)

type runtime_step = { rt_label : string; rt_paper_us : float; rt_measured_us : float }

val table7 : unit -> runtime_step list
(** Stubs and RPC runtime for a call of Null(). *)

type accounting = {
  what : string;
  paper_calc_us : float;
  measured_calc_us : float;  (** sum of the traced components *)
  paper_elapsed_us : float;
  measured_elapsed_us : float;  (** simulated single-call latency *)
}

val table8 : unit -> accounting list
(** Calculated vs measured latency for Null() and MaxResult(b). *)

val tables : unit -> Report.Table.t list
