module Time = Sim.Time
module Config = Hw.Config
module Driver = Workload.Driver

type bug_row = { variant : string; mean_null_ms : float; retransmissions : int }

let uniproc_bug ?(calls = 1200) () =
  let run ~fix =
    let cfg = { Config.default with cpus = 1; uniproc_fix = fix; hand_stubs = true } in
    let o = Exp_common.throughput ~caller_config:cfg ~server_config:cfg ~threads:1 ~calls ~proc:Driver.Null () in
    {
      variant = (if fix then "with swapped-lines fix" else "without fix (the bug)");
      mean_null_ms = Time.to_ms o.Driver.mean_latency;
      retransmissions = o.Driver.retransmissions;
    }
  in
  [ run ~fix:false; run ~fix:true ]

type streaming_row = { strategy : string; mbps : float; wakeups_per_kb : float }

let streaming ?(calls = 250) () =
  let uni ~streaming_results =
    { (Exp_common.exerciser ~cpus:1) with Config.streaming_results }
  in
  let threads_run =
    Exp_common.throughput ~caller_config:(uni ~streaming_results:false)
      ~server_config:(uni ~streaming_results:false) ~threads:4 ~calls:(4 * calls)
      ~proc:Driver.Max_result ()
  in
  let bulk ~streaming_results =
    let cfg = uni ~streaming_results in
    (* Each call moves 20 KB (14 fragments). *)
    Exp_common.throughput ~caller_config:cfg ~server_config:cfg ~threads:1
      ~calls:(max 20 (calls / 10))
      ~proc:(Driver.Get_data 20_000) ()
  in
  let stop_and_wait = bulk ~streaming_results:false in
  let blast = bulk ~streaming_results:true in
  (* Wakeups per KB transferred: thread-parallel RPC pays two scheduler
     wakeups per 1.44 KB call; a 20 KB stop-and-wait transfer wakes a
     thread per fragment and per fragment ack; streaming wakes the
     caller once per arriving fragment only. *)
  let wakeups_per_kb ~per_call_wakeups ~kb_per_call =
    float_of_int per_call_wakeups /. kb_per_call
  in
  [
    {
      strategy = "4 threads x MaxResult (paper's approach)";
      mbps = threads_run.Driver.megabits_per_sec;
      wakeups_per_kb = wakeups_per_kb ~per_call_wakeups:2 ~kb_per_call:1.44;
    };
    {
      strategy = "1 thread x GetData(20KB), stop-and-wait fragments";
      mbps = stop_and_wait.Driver.megabits_per_sec;
      wakeups_per_kb = wakeups_per_kb ~per_call_wakeups:30 ~kb_per_call:20.;
    };
    {
      strategy = "1 thread x GetData(20KB), streamed fragments";
      mbps = blast.Driver.megabits_per_sec;
      wakeups_per_kb = wakeups_per_kb ~per_call_wakeups:16 ~kb_per_call:20.;
    };
  ]

let tables ?(quick = false) () =
  let bug = uniproc_bug ~calls:(if quick then 60 else 1200) () in
  let str = streaming ~calls:(if quick then 60 else 250) () in
  [
    Report.Table.make ~id:"uniproc-bug" ~title:"Section 5: the uniprocessor lost-packet bug"
      ~columns:[ "variant"; "mean Null() ms"; "retransmissions" ]
      ~notes:
        [
          "paper: without the fix, uniprocessor Null() averaged ~20 ms from ~600 ms retransmission stalls";
          "with the fix: 4.81 ms (Table X)";
        ]
      (List.map
         (fun r ->
           [ r.variant; Report.Table.cell_f r.mean_null_ms; string_of_int r.retransmissions ])
         bug);
    Report.Table.make ~id:"streaming"
      ~title:"Section 5 extension: streamed bulk transfer on uniprocessors"
      ~columns:[ "strategy"; "Mbit/s"; "approx wakeups/KB" ]
      ~notes:
        [
          "the paper speculates a streaming design (Amoeba, V, Sprite) would beat thread-parallel RPC on a uniprocessor because it needs fewer context switches";
        ]
      (List.map
         (fun r ->
           [ r.strategy; Report.Table.cell_f ~decimals:1 r.mbps; Report.Table.cell_f r.wakeups_per_kb ])
         str);
  ]
