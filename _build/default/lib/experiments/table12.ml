module Driver = Workload.Driver

type row = {
  system : string;
  machine : string;
  mips : string;
  latency_ms : float;
  throughput_mbps : float;
  measured : bool;
}

let published =
  [
    { system = "Cedar"; machine = "Dorado - custom"; mips = "1 x 4"; latency_ms = 1.1; throughput_mbps = 2.0; measured = false };
    { system = "Amoeba"; machine = "Tadpole - M68020"; mips = "1 x 1.5"; latency_ms = 1.4; throughput_mbps = 5.3; measured = false };
    { system = "V"; machine = "Sun 3/75 - M68020"; mips = "1 x 2"; latency_ms = 2.5; throughput_mbps = 4.4; measured = false };
    { system = "Sprite"; machine = "Sun 3/75 - M68020"; mips = "1 x 2"; latency_ms = 2.8; throughput_mbps = 5.6; measured = false };
    { system = "Amoeba/Unix"; machine = "Sun 3/50 - M68020"; mips = "1 x 1.5"; latency_ms = 7.0; throughput_mbps = 1.8; measured = false };
  ]

(* Paper rows for Firefly: 1x1 -> 4.8 ms / 2.5 Mbit/s, 5x1 -> 2.7 / 4.6
   (Exerciser stubs, as in Tables X-XI). *)
let run ?(quick = false) () =
  let calls = if quick then 200 else 1000 in
  let firefly ~cpus =
    let cfg = Exp_common.exerciser ~cpus in
    let lat =
      Exp_common.throughput ~caller_config:cfg ~server_config:cfg ~threads:1 ~calls
        ~proc:Driver.Null ()
    in
    let thr =
      Exp_common.throughput ~caller_config:cfg ~server_config:cfg ~threads:4
        ~calls:(4 * calls) ~proc:Driver.Max_result ()
    in
    ( Sim.Time.to_ms lat.Driver.mean_latency,
      thr.Driver.megabits_per_sec )
  in
  let uni_lat, uni_thr = firefly ~cpus:1 in
  let multi_lat, multi_thr = firefly ~cpus:5 in
  published
  @ [
      {
        system = "Firefly (sim)";
        machine = "FF - MicroVAX II";
        mips = "1 x 1";
        latency_ms = uni_lat;
        throughput_mbps = uni_thr;
        measured = true;
      };
      {
        system = "Firefly (sim)";
        machine = "FF - MicroVAX II";
        mips = "5 x 1";
        latency_ms = multi_lat;
        throughput_mbps = multi_thr;
        measured = true;
      };
    ]

let table ?quick () =
  Report.Table.make ~id:"table12" ~title:"Performance of remote RPC in other systems"
    ~columns:[ "system"; "machine"; "~MIPs"; "latency ms"; "throughput Mbit/s" ]
    ~notes:
      [
        "non-Firefly rows are published figures quoted by the paper; Firefly rows are simulated here";
        "paper's Firefly rows: 1x1 -> 4.8 ms / 2.5 Mbit/s; 5x1 -> 2.7 ms / 4.6 Mbit/s";
      ]
    (List.map
       (fun r ->
         [
           (r.system ^ if r.measured then " *" else "");
           r.machine;
           r.mips;
           Report.Table.cell_f ~decimals:1 r.latency_ms;
           Report.Table.cell_f ~decimals:1 r.throughput_mbps;
         ])
       (run ?quick ()))
