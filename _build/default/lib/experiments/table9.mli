(** Table IX — execution time of the Ethernet interrupt routine's main
    path in its three historical versions (original Modula-2+, tuned
    Modula-2+, assembly), plus the effect each has on Null() latency —
    the §4.1 story that rewriting the fast path in assembly bought a
    factor of three. *)

type row = {
  version : string;
  paper_us : float;
  measured_us : float;  (** traced "Handle interrupt for received pkt" span *)
  null_latency_us : float;  (** whole-call impact *)
}

val run : unit -> row list
val table : unit -> Report.Table.t
