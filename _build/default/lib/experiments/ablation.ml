module Time = Sim.Time
module Config = Hw.Config
module Driver = Workload.Driver

type row = { variant : string; null_us : float; maxr_us : float; null_rps_7 : float }

let measure ~quick config variant =
  let lat proc =
    Time.to_us (Exp_common.single_call ~caller_config:config ~server_config:config ~proc ())
  in
  let sat =
    Exp_common.throughput ~caller_config:config ~server_config:config ~threads:7
      ~calls:(if quick then 500 else 3000)
      ~proc:Driver.Null ()
  in
  {
    variant;
    null_us = lat Driver.Null;
    maxr_us = lat Driver.Max_result;
    null_rps_7 = sat.Driver.rpcs_per_sec;
  }

let run ?(quick = false) () =
  [
    measure ~quick Config.default "interrupt-time demux (the Firefly design)";
    measure ~quick
      { Config.default with Config.traditional_demux = true }
      "datalink-thread demux (traditional)";
  ]

let table ?quick () =
  Report.Table.make ~id:"ablation-demux"
    ~title:"Ablation: interrupt-time demultiplexing vs the traditional datalink thread"
    ~columns:[ "variant"; "Null us"; "MaxResult us"; "Null RPC/s (7 threads)" ]
    ~notes:
      [
        "section 3.2: the traditional path 'doubles the number of wakeups required for an RPC'";
        "latency: the extra wakeup + datalink dispatch cost ~0.9 ms per call — the difference the paper's design buys";
        "throughput: in the model the traditional path saturates HIGHER, because demultiplexing moves off the serialized CPU 0 onto the datalink thread; a latency/throughput trade the paper resolved in favour of latency";
      ]
    (List.map
       (fun r ->
         [
           r.variant;
           Report.Table.cell_f ~decimals:0 r.null_us;
           Report.Table.cell_f ~decimals:0 r.maxr_us;
           Report.Table.cell_f ~decimals:0 r.null_rps_7;
         ])
       (run ?quick ()))
