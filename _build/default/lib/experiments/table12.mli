(** Table XII — inter-machine Null() RPC performance of contemporary
    systems, as published, next to our simulated Firefly rows.

    The non-Firefly rows are the numbers the paper itself quotes from
    the literature (Cedar, Amoeba, V, Sprite); only the Firefly rows are
    measured here. *)

type row = {
  system : string;
  machine : string;
  mips : string;
  latency_ms : float;
  throughput_mbps : float;
  measured : bool;  (** true for our simulated Firefly rows *)
}

val run : ?quick:bool -> unit -> row list
val table : ?quick:bool -> unit -> Report.Table.t
