(** Tables X and XI — performance with fewer processors (§5).

    Measured, as the paper did, with the RPC Exerciser's hand-produced
    stubs and the "swapped lines" fix installed. *)

type latency_row = {
  caller_cpus : int;
  server_cpus : int;
  paper_sec_per_1000 : float;
  measured_sec_per_1000 : float;
}

val table10 : ?calls:int -> unit -> latency_row list
(** One thread calling Null(); seconds per 1000 calls. *)

type throughput_row = {
  t_caller_cpus : int;
  t_server_cpus : int;
  t_threads : int;
  paper_mbps : float;
  measured_mbps : float;
}

val table11 : ?calls_per_thread:int -> unit -> throughput_row list
(** MaxResult(b) throughput, 1–5 caller threads, 1000 calls each. *)

val tables : ?quick:bool -> unit -> Report.Table.t list
