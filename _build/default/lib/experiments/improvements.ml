module Time = Sim.Time
module Config = Hw.Config
module Driver = Workload.Driver

type row = {
  change : string;
  paper_null_saving_us : float;
  paper_maxr_saving_us : float;
  sim_null_saving_us : float;
  sim_maxr_saving_us : float;
}

(* (section, name, paper Null saving, paper MaxResult saving, config change) *)
let changes =
  [
    ( "4.2.1 different network controller (full overlap)",
      300.,
      1800.,
      fun c -> { c with Config.cut_through = true } );
    ( "4.2.2 faster network (100 Mbit/s)",
      110.,
      1160.,
      fun c -> { c with Config.ethernet_mbps = 100. } );
    ("4.2.3 faster CPUs (x3)", 1380., 2280., fun c -> { c with Config.cpu_speedup = 3. });
    ("4.2.4 omit UDP checksums", 180., 1000., fun c -> { c with Config.udp_checksums = false });
    ( "4.2.5 redesign RPC protocol header",
      200.,
      200.,
      fun c -> { c with Config.redesigned_header = true } );
    ("4.2.6 omit IP and UDP layers", 100., 100., fun c -> { c with Config.raw_ethernet = true });
    ("4.2.7 busy wait", 440., 440., fun c -> { c with Config.busy_wait = true });
    ("4.2.8 recode RPC runtime", 280., 280., fun c -> { c with Config.hand_runtime = true });
  ]

let latency config proc =
  Time.to_us (Exp_common.single_call ~caller_config:config ~server_config:config ~proc ())

let run () =
  let base_null = latency Config.default Driver.Null in
  let base_maxr = latency Config.default Driver.Max_result in
  List.map
    (fun (change, p_null, p_maxr, apply) ->
      let cfg = apply Config.default in
      {
        change;
        paper_null_saving_us = p_null;
        paper_maxr_saving_us = p_maxr;
        sim_null_saving_us = base_null -. latency cfg Driver.Null;
        sim_maxr_saving_us = base_maxr -. latency cfg Driver.Max_result;
      })
    changes

let table () =
  Report.Table.make ~id:"improvements" ~title:"Section 4.2: estimated vs re-simulated savings"
    ~columns:
      [ "change"; "Null paper us"; "Null sim us"; "MaxResult paper us"; "MaxResult sim us" ]
    ~notes:
      [
        "paper columns are the authors' estimates; sim columns re-run the whole system with the change applied";
        "the paper notes the effects are not independent and cannot simply be added";
      ]
    (List.map
       (fun r ->
         [
           r.change;
           Report.Table.cell_f ~decimals:0 r.paper_null_saving_us;
           Report.Table.cell_f ~decimals:0 r.sim_null_saving_us;
           Report.Table.cell_f ~decimals:0 r.paper_maxr_saving_us;
           Report.Table.cell_f ~decimals:0 r.sim_maxr_saving_us;
         ])
       (run ()))
