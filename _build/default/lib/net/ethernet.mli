(** Ethernet II framing (as put on the wire by the DEQNA model).

    The frame check sequence is not carried in the byte image — the
    paper's 74/1514-byte packet sizes exclude it too — but corruption is
    modelled: the link layer can flip bits {e after} the CRC check, which
    is exactly the DEQNA misbehaviour that forces the Firefly to keep
    software UDP checksums (paper §4.2.4). *)

type header = { dst : Mac.t; src : Mac.t; ethertype : int }

val ethertype_ipv4 : int

val ethertype_firefly_rpc : int
(** Private ethertype used by the "omit IP and UDP layers" variant
    (paper §4.2.6). *)

val header_size : int
(** 14 bytes. *)

val min_frame_size : int
(** 60 bytes excluding FCS; shorter frames are padded on the wire. *)

val max_frame_size : int
(** 1514 bytes excluding FCS — the maximum the paper's packets hit. *)

val encode : Wire.Bytebuf.Writer.t -> header -> unit

val decode : Wire.Bytebuf.Reader.t -> (header, string) result
(** Consumes 14 bytes; the payload remains in the reader. *)
