module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader

type header = { src_port : int; dst_port : int; length : int; checksum : int }

let header_size = 8

let encode w ~src ~dst ~src_port ~dst_port ?(checksum = true) ~payload () =
  let start = W.length w in
  W.u16 w src_port;
  W.u16 w dst_port;
  W.u16 w 0 (* length placeholder *);
  W.u16 w 0 (* checksum placeholder *);
  payload w;
  let len = W.length w - start in
  W.patch_u16 w ~pos:(start + 4) len;
  if checksum then begin
    let init = Ipv4.pseudo_header_sum ~src ~dst ~protocol:Ipv4.protocol_udp ~len in
    let cks =
      Wire.Checksum.checksum ~init (W.unsafe_buffer w) ~pos:(W.absolute_pos w start) ~len
    in
    (* An all-zero computed checksum is transmitted as 0xffff (RFC 768). *)
    W.patch_u16 w ~pos:(start + 6) (if cks = 0 then 0xffff else cks)
  end

let decode r ~src ~dst =
  if R.remaining r < header_size then Error "udp: truncated header"
  else begin
    let datagram_len = R.remaining r in
    let raw = R.bytes r datagram_len in
    let hr = R.of_bytes raw in
    let src_port = R.u16 hr in
    let dst_port = R.u16 hr in
    let length = R.u16 hr in
    let checksum = R.u16 hr in
    if length < header_size || length > datagram_len then Error "udp: bad length"
    else if
      checksum <> 0
      && not
           (let init =
              Ipv4.pseudo_header_sum ~src ~dst ~protocol:Ipv4.protocol_udp ~len:length
            in
            Wire.Checksum.verify ~init raw ~pos:0 ~len:length)
    then Error "udp: bad checksum"
    else
      Ok
        ( { src_port; dst_port; length; checksum },
          Bytes.sub raw header_size (length - header_size) )
  end
