module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader

module Addr = struct
  type t = int32

  let of_int32 v = v
  let to_int32 v = v

  let of_string s =
    match String.split_on_char '.' s with
    | [ a; b; c; d ] ->
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 -> v
        | _ -> invalid_arg ("Ipv4.Addr.of_string: bad octet " ^ x)
      in
      let a, b, c, d = (octet a, octet b, octet c, octet d) in
      Int32.of_int ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d)
    | _ -> invalid_arg ("Ipv4.Addr.of_string: " ^ s)

  let to_string t =
    let v = Int32.to_int t land 0xffffffff in
    Printf.sprintf "%d.%d.%d.%d" ((v lsr 24) land 0xff) ((v lsr 16) land 0xff)
      ((v lsr 8) land 0xff) (v land 0xff)

  let equal = Int32.equal
  let compare = Int32.compare
  let pp fmt t = Format.pp_print_string fmt (to_string t)
end

type header = {
  src : Addr.t;
  dst : Addr.t;
  protocol : int;
  ttl : int;
  ident : int;
  payload_len : int;
}

let protocol_udp = 17
let header_size = 20

let encode w h =
  let start = W.length w in
  W.u8 w 0x45 (* version 4, IHL 5 *);
  W.u8 w 0 (* TOS *);
  W.u16 w (header_size + h.payload_len);
  W.u16 w h.ident;
  W.u16 w 0 (* flags/fragment offset *);
  W.u8 w h.ttl;
  W.u8 w h.protocol;
  W.u16 w 0 (* checksum placeholder *);
  W.u32 w (Addr.to_int32 h.src);
  W.u32 w (Addr.to_int32 h.dst);
  let cks =
    Wire.Checksum.checksum (W.unsafe_buffer w) ~pos:(W.absolute_pos w start) ~len:header_size
  in
  W.patch_u16 w ~pos:(start + 10) cks

let decode r =
  if R.remaining r < header_size then Error "ipv4: truncated header"
  else begin
    (* Verify the checksum over the raw header bytes before parsing. *)
    let raw = R.bytes r header_size in
    if not (Wire.Checksum.verify raw ~pos:0 ~len:header_size) then Error "ipv4: bad header checksum"
    else
      let hr = R.of_bytes raw in
      let vihl = R.u8 hr in
      if vihl <> 0x45 then Error (Printf.sprintf "ipv4: unsupported version/IHL 0x%02x" vihl)
      else begin
        R.skip hr 1 (* TOS *);
        let total_len = R.u16 hr in
        let ident = R.u16 hr in
        let frag = R.u16 hr in
        let ttl = R.u8 hr in
        let protocol = R.u8 hr in
        R.skip hr 2 (* checksum, already verified *);
        let src = Addr.of_int32 (R.u32 hr) in
        let dst = Addr.of_int32 (R.u32 hr) in
        if frag land 0x3fff <> 0 then Error "ipv4: fragmented packet unsupported"
        else if total_len < header_size then Error "ipv4: bad total length"
        else Ok { src; dst; protocol; ttl; ident; payload_len = total_len - header_size }
      end
  end

let pseudo_header_sum ~src ~dst ~protocol ~len =
  let b = Bytes.create 12 in
  Bytes.set_int32_be b 0 (Addr.to_int32 src);
  Bytes.set_int32_be b 4 (Addr.to_int32 dst);
  Bytes.set_uint8 b 8 0;
  Bytes.set_uint8 b 9 protocol;
  Bytes.set_uint16_be b 10 len;
  Wire.Checksum.sum b ~pos:0 ~len:12
