lib/net/udp.mli: Ipv4 Stdlib Wire
