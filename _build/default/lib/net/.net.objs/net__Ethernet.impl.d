lib/net/ethernet.ml: Mac Wire
