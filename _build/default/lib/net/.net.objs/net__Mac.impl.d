lib/net/mac.ml: Char Format Hashtbl List Printf String Wire
