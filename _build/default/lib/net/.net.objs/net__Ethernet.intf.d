lib/net/ethernet.mli: Mac Wire
