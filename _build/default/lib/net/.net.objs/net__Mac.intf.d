lib/net/mac.mli: Format Wire
