lib/net/ipv4.ml: Bytes Format Int32 Printf String Wire
