module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader

type header = { dst : Mac.t; src : Mac.t; ethertype : int }

let ethertype_ipv4 = 0x0800
let ethertype_firefly_rpc = 0x88b5 (* IEEE local experimental *)
let header_size = 14
let min_frame_size = 60
let max_frame_size = 1514

let encode w { dst; src; ethertype } =
  Mac.write w dst;
  Mac.write w src;
  W.u16 w ethertype

let decode r =
  if R.remaining r < header_size then Error "ethernet: frame too short"
  else
    let dst = Mac.read r in
    let src = Mac.read r in
    let ethertype = R.u16 r in
    Ok { dst; src; ethertype }
