type t = string (* exactly 6 bytes *)

let size = 6
let broadcast = "\xff\xff\xff\xff\xff\xff"

let of_station n =
  if n < 0 || n > 0xffffff then invalid_arg "Mac.of_station: out of range";
  (* 0x02 = locally administered, unicast. *)
  Printf.sprintf "\x02\x00\x00%c%c%c"
    (Char.chr ((n lsr 16) land 0xff))
    (Char.chr ((n lsr 8) land 0xff))
    (Char.chr (n land 0xff))

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
    let byte x =
      match int_of_string_opt ("0x" ^ x) with
      | Some v when v >= 0 && v <= 0xff -> Char.chr v
      | _ -> invalid_arg ("Mac.of_string: bad octet " ^ x)
    in
    let parts = List.map byte [ a; b; c; d; e; f ] in
    String.init 6 (List.nth parts)
  | _ -> invalid_arg ("Mac.of_string: " ^ s)

let to_string t =
  String.concat ":" (List.init 6 (fun i -> Printf.sprintf "%02x" (Char.code t.[i])))

let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let is_broadcast t = equal t broadcast
let pp fmt t = Format.pp_print_string fmt (to_string t)
let write w t = Wire.Bytebuf.Writer.string w t
let read r = Wire.Bytebuf.Reader.string r size
