(** 48-bit Ethernet (MAC) addresses. *)

type t

val broadcast : t

val of_station : int -> t
(** [of_station n] is a locally-administered unicast address derived
    from a small station number — how the simulator names DEQNA
    controllers.  [n] must be in [0, 0xffffff]. *)

val of_string : string -> t
(** Parses ["aa:bb:cc:dd:ee:ff"].  @raise Invalid_argument on syntax
    errors. *)

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val is_broadcast : t -> bool
val pp : Format.formatter -> t -> unit

val size : int
(** Encoded size in bytes (6). *)

val write : Wire.Bytebuf.Writer.t -> t -> unit
val read : Wire.Bytebuf.Reader.t -> t
