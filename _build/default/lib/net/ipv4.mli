(** Minimal IPv4: addresses and the 20-byte header, with a real header
    checksum.  No options, no fragmentation — the Firefly RPC transport
    never fragments at the IP layer (the RPC protocol does its own
    packetization), and the paper's packets all fit one Ethernet frame. *)

module Addr : sig
  type t

  val of_string : string -> t
  (** Parses dotted-quad.  @raise Invalid_argument on syntax errors. *)

  val of_int32 : int32 -> t
  val to_int32 : t -> int32
  val to_string : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

type header = {
  src : Addr.t;
  dst : Addr.t;
  protocol : int;
  ttl : int;
  ident : int;
  payload_len : int;  (** bytes following the header *)
}

val protocol_udp : int
val header_size : int  (** 20 bytes *)

val encode : Wire.Bytebuf.Writer.t -> header -> unit
(** Writes the header including its computed checksum. *)

val decode : Wire.Bytebuf.Reader.t -> (header, string) result
(** Verifies version, IHL and the header checksum; consumes 20 bytes. *)

val pseudo_header_sum : src:Addr.t -> dst:Addr.t -> protocol:int -> len:int -> int
(** Ones-complement sum of the UDP/TCP pseudo-header, for use as the
    [init] of a payload checksum. *)
