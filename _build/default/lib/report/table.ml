type t = {
  id : string;
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~columns ?(notes = []) rows =
  List.iteri
    (fun i r ->
      if List.length r <> List.length columns then
        invalid_arg (Printf.sprintf "Report.Table.make %s: row %d has %d cells, want %d" id i
             (List.length r) (List.length columns)))
    rows;
  { id; title; columns; rows; notes }

let render t =
  let all = t.columns :: t.rows in
  let ncols = List.length t.columns in
  let width c = List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all in
  let widths = List.init ncols width in
  let pad c s =
    let w = List.nth widths c in
    String.make (w - String.length s) ' ' ^ s
  in
  let render_row row = "  " ^ String.concat "  " (List.mapi pad row) in
  let sep =
    "  " ^ String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "== %s: %s ==\n" t.id t.title);
  Buffer.add_string buf (render_row t.columns);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    t.rows;
  List.iter (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let print t = print_string (render t)
let cell_f ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_us d = Printf.sprintf "%.0f" (Sim.Time.to_us d)
let cell_ms d = Printf.sprintf "%.2f" (Sim.Time.to_ms d)
let cell_sec d = Printf.sprintf "%.2f" (Sim.Time.to_sec d)
let cell_i = string_of_int

let pct_delta ~paper ~measured =
  if paper = 0. then 0. else (measured -. paper) /. paper *. 100.

let compare_cell ~paper ~measured =
  Printf.sprintf "%.2f / %.2f (%+.0f%%)" paper measured (pct_delta ~paper ~measured)
