lib/report/table.mli: Sim
