lib/report/table.ml: Buffer List Printf Sim String
