(** Plain-text table rendering for the reproduced paper tables. *)

type t = {
  id : string;  (** e.g. "table1" *)
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

val make : id:string -> title:string -> columns:string list -> ?notes:string list ->
  string list list -> t

val render : t -> string
(** Monospaced layout: title, column headers, aligned rows, notes. *)

val print : t -> unit

(** {1 Cell formatting helpers} *)

val cell_f : ?decimals:int -> float -> string
val cell_us : Sim.Time.span -> string
(** Microseconds, no unit suffix. *)

val cell_ms : Sim.Time.span -> string
val cell_sec : Sim.Time.span -> string
val cell_i : int -> string

val compare_cell : paper:float -> measured:float -> string
(** ["paper / measured (+d%)"] — the paper-vs-measured presentation
    used throughout EXPERIMENTS.md. *)

val pct_delta : paper:float -> measured:float -> float
