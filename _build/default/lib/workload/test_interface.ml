module Time = Sim.Time

let buffer_bytes = 1440

let get_data_max = 60_000

let interface =
  Rpc.Idl.interface ~name:"Test" ~version:1
    [
      Rpc.Idl.proc "Null" [];
      Rpc.Idl.proc "MaxResult" [ Rpc.Idl.arg ~mode:Rpc.Idl.Var_out "buffer" (Rpc.Idl.T_var_bytes buffer_bytes) ];
      Rpc.Idl.proc "MaxArg" [ Rpc.Idl.arg ~mode:Rpc.Idl.Var_in "buffer" (Rpc.Idl.T_var_bytes buffer_bytes) ];
      Rpc.Idl.proc "GetData"
        [
          Rpc.Idl.arg "len" Rpc.Idl.T_int;
          Rpc.Idl.arg ~mode:Rpc.Idl.Var_out "buffer" (Rpc.Idl.T_var_bytes get_data_max);
        ];
    ]

let null_idx = Rpc.Idl.find_proc interface "Null"
let max_result_idx = Rpc.Idl.find_proc interface "MaxResult"
let max_arg_idx = Rpc.Idl.find_proc interface "MaxArg"
let get_data_idx = Rpc.Idl.find_proc interface "GetData"

let pattern n = Bytes.init n (fun i -> Char.chr ((i * 7) land 0xff))

let charge_body ctx span =
  Hw.Cpu_set.charge ctx ~cat:"runtime" ~label:"Null (the server procedure)" span

let impls timing =
  let body_us = Time.us 10 in
  let null_impl ctx _args =
    charge_body ctx body_us;
    []
  in
  let max_result_impl ctx args =
    charge_body ctx body_us;
    match args with
    | [ Rpc.Marshal.V_bytes b ] ->
      (* The server procedure writes the result directly into the
         result packet buffer (§2.2): same-size pattern, no extra
         charge beyond the body. *)
      ignore (Hw.Timing.config timing);
      [ Rpc.Marshal.V_bytes (pattern (max (Bytes.length b) buffer_bytes)) ]
    | _ -> [ Rpc.Marshal.V_bytes (pattern buffer_bytes) ]
  in
  let max_arg_impl ctx args =
    charge_body ctx body_us;
    (match args with
    | [ Rpc.Marshal.V_bytes b ] ->
      let expected = pattern (Bytes.length b) in
      if not (Bytes.equal b expected) then
        Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "MaxArg: payload corrupted in transit")
    | _ -> ());
    []
  in
  let get_data_impl ctx args =
    charge_body ctx body_us;
    match args with
    | [ Rpc.Marshal.V_int n; Rpc.Marshal.V_bytes _ ] ->
      let n = Int32.to_int n in
      if n < 0 || n > get_data_max then
        Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "GetData: length out of range");
      [ Rpc.Marshal.V_bytes (pattern n) ]
    | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "GetData: bad arguments")
  in
  [| null_impl; max_result_impl; max_arg_impl; get_data_impl |]
