lib/workload/world.ml: Hw Net Nub Rpc Sim Test_interface
