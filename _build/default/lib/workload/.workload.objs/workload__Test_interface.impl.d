lib/workload/test_interface.ml: Bytes Char Hw Int32 Rpc Sim
