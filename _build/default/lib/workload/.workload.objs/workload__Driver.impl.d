lib/workload/driver.ml: Array Bytes Float Hw Int32 List Nub Rpc Sim Test_interface World
