lib/workload/world.mli: Hw Nub Rpc Sim
