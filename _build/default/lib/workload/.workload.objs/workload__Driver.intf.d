lib/workload/driver.mli: Rpc Sim World
