lib/workload/test_interface.mli: Hw Rpc Stdlib
