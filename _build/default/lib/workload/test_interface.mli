(** The paper's remote "Test" interface (§2):

    {v
    PROCEDURE Null();
    PROCEDURE MaxResult(VAR OUT buffer: ARRAY OF CHAR);
    PROCEDURE MaxArg(VAR IN buffer: ARRAY OF CHAR);
    v}

    called with [VAR b: ARRAY [0..1439] OF CHAR] — 1440 bytes, the
    largest argument that fits a single packet. *)

val buffer_bytes : int
(** 1440. *)

val interface : Rpc.Idl.interface

val null_idx : int
val max_result_idx : int
val max_arg_idx : int

val get_data_idx : int
(** [GetData(len: INTEGER; VAR OUT buffer)] — a variable-size result
    procedure (up to {!get_data_max} bytes, i.e. multi-packet results)
    used by the streaming-extension and file-transfer scenarios; not in
    the paper's Test interface. *)

val get_data_max : int

val impls : Hw.Timing.t -> Rpc.Runtime.impl array
(** Server implementations: [Null] burns the measured 10 µs procedure
    body (Table VII); [MaxResult] fills the result buffer with a
    recognizable pattern; [MaxArg] checks the received pattern. *)

val pattern : int -> Stdlib.Bytes.t
(** [pattern n] is the deterministic n-byte test payload. *)
