(** The calibrated cost model.

    Every constant is a measured line item from the paper: Table VI
    (the send+receive operation), Table VII (stubs and runtime for a
    call of Null()), Tables II–V (marshalling), §2.2's footnote (local
    RPC), §3.3 (the 131 µs the paper could not attribute), Table IX
    (interrupt-routine versions) and §5 (Exerciser stubs, uniprocessor
    penalties).  Per-byte costs are linear fits through the paper's
    74-byte and 1514-byte measurements.

    All software costs scale with [1/cpu_speedup] and, where §4.2 says
    so, with the configuration's improvement flags; hardware latencies
    scale with the configured bus/network rates instead.  The functions
    below return spans ready to charge to a simulated CPU or bus. *)

type t

val create : Config.t -> t
val config : t -> Config.t

(** {1 Table VI — the send+receive operation}

    The first seven are sending-machine software, the next three are
    hardware transfer latencies, the last four receiving-machine
    software (run in the Ethernet interrupt routine on CPU 0). *)

val finish_udp_header : t -> Sim.Time.span
(** 59 µs (Sender); 25 µs when [raw_ethernet] (a bare RPC-over-Ethernet
    header is cheaper to fill in, §4.2.6), less 30 µs when
    [redesigned_header] (§4.2.5's easier-to-build header). *)

val udp_checksum : t -> bytes:int -> Sim.Time.span
(** 24.7 µs + 0.274 µs/byte — 45 µs at 74 bytes, 440 µs at 1514.  Zero
    when checksums are disabled (§4.2.4). *)

val trap_to_nub : t -> Sim.Time.span  (** 37 µs *)

val queue_packet : t -> Sim.Time.span  (** 39 µs *)

val ipi_latency : t -> Sim.Time.span
(** 10 µs — hardware signalling delay to CPU 0; not CPU-scaled. *)

val ipi_handler : t -> Sim.Time.span  (** 76 µs, on CPU 0 *)

val activate_controller : t -> Sim.Time.span  (** 22 µs, on CPU 0 *)

val qbus_transmit : t -> bytes:int -> Sim.Time.span
(** 31.7 µs + 0.517 µs/byte at 16 Mbit/s — 70 µs at 74 bytes, 815 µs at
    1514.  The per-byte part scales with [qbus_mbps]. *)

val wire_time : t -> bytes:int -> Sim.Time.span
(** 0.8 µs/byte at 10 Mbit/s — 59 µs at 74 bytes, 1211 µs at 1514 (the
    paper's logic analyzer read 60 and 1230).  Scales with
    [ethernet_mbps]. *)

val qbus_receive : t -> bytes:int -> Sim.Time.span
(** 41.4 µs + 0.524 µs/byte — 80 µs at 74 bytes, 835 µs at 1514. *)

val io_interrupt : t -> Sim.Time.span  (** 14 µs general I/O handler *)

val rx_demux : t -> Sim.Time.span
(** "Handle interrupt for received pkt": 177 µs in assembly, 547 µs in
    final Modula-2+, 758 µs in the original (Table IX); less 70 µs when
    [redesigned_header]. *)

val traditional_interrupt : t -> Sim.Time.span
(** With [traditional_demux]: the interrupt routine only posts the
    packet to the datalink thread (40 µs); the demultiplexing work
    moves to that thread. *)

val wakeup : t -> Sim.Time.span
(** 220 µs scheduler wakeup; 10 µs when the waiter busy-waits
    (§4.2.7 — the waker merely sets a flag the spinner polls). *)

val interrupt_epilogue : t -> Sim.Time.span
(** CPU-0 work after an interrupt's main path: interrupted-context
    restore, run-queue and buffer bookkeeping, lock handoff.  400 µs,
    charged once after each receive-interrupt packet {e and} once after
    each interprocessor-interrupt prod, so a full RPC costs its machine
    ~800 µs of serialized CPU-0 time beyond Table VI.  Calibrated to
    Table I's multi-thread Null() saturation (~740 calls/s): Table VI
    accounts one {e idle-machine} call's latency and leaves 131 µs
    unattributed even there; under concurrency the serialized scheduler
    work on CPU 0 is what caps the call rate.  Off the latency path of
    an isolated call: each 400 µs slice finishes before the next
    on-path CPU-0 event of that call arrives. *)

(** {1 Table VII — stubs and RPC runtime for Null()} *)

val caller_loop : t -> Sim.Time.span  (** 16 µs *)

val calling_stub : t -> Sim.Time.span
(** 90 µs generated; 10 µs for the Exerciser's hand stubs (the
    Exerciser's whole 140 µs Null() saving is calibrated into the two
    stub constants). *)

val starter : t -> Sim.Time.span  (** 128 µs (÷3 when [hand_runtime]) *)

val transporter_send : t -> Sim.Time.span  (** 27 µs (÷3 when [hand_runtime]) *)

val receiver_recv : t -> Sim.Time.span  (** 158 µs (÷3 when [hand_runtime]) *)

val server_stub : t -> Sim.Time.span
(** 68 µs generated; 8 µs for hand stubs. *)

val receiver_send : t -> Sim.Time.span  (** 27 µs (÷3 when [hand_runtime]) *)

val transporter_recv : t -> Sim.Time.span  (** 49 µs (÷3 when [hand_runtime]) *)

val ender : t -> Sim.Time.span  (** 33 µs (÷3 when [hand_runtime]) *)

val unattributed_per_packet : t -> Sim.Time.span
(** Half of the 131 µs §3.3 fails to account for in a call of Null(),
    charged on the sending side of each of the two send+receive
    operations so the simulator reproduces the {e measured} 2.66 ms
    rather than the calculated 2.51 ms. *)

val register_call : t -> Sim.Time.span
(** ~30 µs the Transporter spends registering the outstanding call in
    the call table after the packet is queued.  Overlapped with
    transmission on a multiprocessor (§3.1.3), so it burns CPU but not
    latency there. *)

(** {1 Tables II–V — marshalling}

    Incremental costs over Null(), charged inside the stubs.  All are
    zero under [hand_stubs] (the Exerciser does no marshalling: caller
    and server reference packet buffers directly). *)

val marshal_int_caller : t -> Sim.Time.span
(** 4 µs: caller stub copies one 4-byte by-value argument into the call
    packet (Table II's 8 µs per integer is this plus the server side). *)

val marshal_int_server : t -> Sim.Time.span  (** the other 4 µs *)

val marshal_fixed_array : t -> bytes:int -> Sim.Time.span
(** VAR OUT/VAR IN fixed-length array: 18.8 µs + 0.303 µs/byte (20 µs at
    4 bytes, 140 µs at 400 — Table III).  Single copy, charged where the
    data is consumed (caller for VAR OUT, server for VAR IN). *)

val marshal_var_array : t -> bytes:int -> Sim.Time.span
(** VAR OUT/VAR IN variable-length array: 114.7 µs + 0.302 µs/byte
    (115 µs at 1 byte, 550 µs at 1440 — Table IV). *)

val marshal_text_nil : t -> Sim.Time.span
(** 89 µs for a NIL Text.T (Table V). *)

val marshal_text_caller : t -> bytes:int -> Sim.Time.span
(** Caller-side share (copy into call packet) of a non-NIL Text.T:
    35 % of the 375.8 µs + 2.21 µs/byte fit through Table V. *)

val marshal_text_server : t -> bytes:int -> Sim.Time.span
(** Server-side share: allocation from garbage-collected storage plus
    copy — the remaining 65 %. *)

(** {1 Local (same-machine) transport}

    Calibrated so a local RPC to Null() costs 937 µs (§2.2 footnote):
    the same stubs, a shared-memory packet hand-off, two wakeups. *)

val local_starter : t -> Sim.Time.span
val local_transporter_send : t -> Sim.Time.span
val local_receiver : t -> Sim.Time.span
val local_receiver_send : t -> Sim.Time.span
val local_transporter_recv : t -> Sim.Time.span
val local_ender : t -> Sim.Time.span

(** {1 Uniprocessor penalties (§5)}

    On a uniprocessor the RPC fast path is not followed exactly: the
    scheduler path is longer and work that overlapped on a
    multiprocessor serializes.  Calibrated against Table X (3.96 ms for
    a 1×5 Exerciser Null(), 4.81 ms for 1×1). *)

val uniproc_interrupt_entry : t -> Sim.Time.span
(** Extra cost entering/leaving an interrupt that preempts or resumes
    thread context on a single-CPU machine; zero when [cpus > 1]. *)

val uniproc_wakeup_extra : t -> Sim.Time.span
(** Extra scheduler path per thread wakeup on a uniprocessor. *)

val uniproc_caller_send_extra : t -> Sim.Time.span
(** Extra serialized send-path work on a uniprocessor caller (trap
    return through the scheduler, self-"IPI" dispatch). *)

val uniproc_rx_extra : t -> bytes:int -> Sim.Time.span
(** Extra per-received-packet work on a uniprocessor: §5 says the fast
    path is followed exactly only on a multiprocessor — received
    packets take a longer scheduler path including a copy, so the cost
    has a per-byte term (100 µs + 0.45 µs/byte, calibrated against the
    Null-vs-MaxResult gap in Tables X and XI). *)

val multiproc_fix_cost : t -> Sim.Time.span
(** The §5 "swapped lines": ~100 µs added to every RPC on a
    multiprocessor when [uniproc_fix] is enabled; zero otherwise or on a
    uniprocessor (where the fix is pure win). *)

val uniproc_bug_loss_probability : t -> float
(** Probability that a given transmitted packet is lost to the §5
    scheduling bug: nonzero only when [uniproc_fix = false] on a
    uniprocessor.  Calibrated to the paper's "around 20 milliseconds"
    average Null() with ~600 ms retransmission penalty. *)

(** {1 Miscellaneous} *)

val dispatch : t -> Sim.Time.span
(** Context-switch cost for a woken thread to start running (15 µs). *)

val busy_wait_poll : t -> Sim.Time.span
(** CPU burn per poll iteration of a spinning waiter (5 µs). *)

val cut_through_setup : t -> Sim.Time.span
(** Residual controller latency when QBus and wire transfers overlap
    (§4.2.1's "maximum conceivable overlap" still needs a store setup;
    10 µs). *)

val deqna_tx_recovery : t -> Sim.Time.span
(** Controller housekeeping after each transmitted frame (descriptor
    completion, buffer release): 200 µs.  Not on any packet's latency
    path — it limits back-to-back transmission.  Calibrated so the
    saturated RPC throughput lands at Table I's 4.65 Mbit/s given the
    Table VI per-packet latencies. *)

val deqna_rx_recovery : t -> bytes:int -> Sim.Time.span
(** Controller housekeeping after receiving a frame: 100 µs, off the
    packet's latency path (charged after the receive interrupt is
    raised).  Reception therefore saturates above transmission — the
    direction of the §4.1 footnote's observation, at a wire-limited
    modelled ratio of ~1.8 against the footnote's ~1.4; forcing 1.4
    would require slowing reception enough to move Table I's 4-thread
    saturation point, and Table I wins that trade. *)

val interframe_gap : t -> Sim.Time.span
(** 9.6 µs Ethernet interframe spacing at 10 Mbit/s; scales inversely
    with [ethernet_mbps]. *)

val rpc_header_bytes : int
(** 32 — chosen so the minimum RPC frame is the paper's 74 bytes. *)

val frame_overhead_bytes : t -> int
(** Bytes of header before RPC payload in a frame: Ethernet+IP+UDP+RPC
    (74), or Ethernet+RPC (46) when [raw_ethernet]. *)

val max_payload_bytes : t -> int
(** Arguments/results that fit a single packet: 1440 normally (1514
    max frame), 1468 when [raw_ethernet]. *)
