lib/hw/cpu_set.ml: Array Fun Queue Sim
