lib/hw/timing.mli: Config Sim
