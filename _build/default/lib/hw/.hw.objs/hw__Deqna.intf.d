lib/hw/deqna.mli: Ether_link Net Sim Stdlib Timing
