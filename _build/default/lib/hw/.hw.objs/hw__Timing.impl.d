lib/hw/timing.ml: Config Float Net Sim
