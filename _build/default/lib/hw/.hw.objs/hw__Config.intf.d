lib/hw/config.mli: Sim
