lib/hw/ether_link.mli: Net Sim Stdlib
