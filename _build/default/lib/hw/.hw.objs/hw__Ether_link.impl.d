lib/hw/ether_link.ml: Bytes Char Fun Hashtbl Net Sim Wire
