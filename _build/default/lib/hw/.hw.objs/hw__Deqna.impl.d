lib/hw/deqna.ml: Bytes Config Ether_link Net Option Queue Sim Timing
