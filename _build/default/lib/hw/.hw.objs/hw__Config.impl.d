lib/hw/config.ml: Sim
