lib/hw/cpu_set.mli: Sim
