type interrupt_code = Original_modula2 | Final_modula2 | Assembly

type t = {
  cpus : int;
  cpu_speedup : float;
  ethernet_mbps : float;
  qbus_mbps : float;
  udp_checksums : bool;
  cut_through : bool;
  busy_wait : bool;
  interrupt_code : interrupt_code;
  traditional_demux : bool;
  redesigned_header : bool;
  raw_ethernet : bool;
  hand_runtime : bool;
  hand_stubs : bool;
  uniproc_fix : bool;
  streaming_results : bool;
  deqna_staging_frames : int;
  idle_load_cpus : float;
  retransmit_after : Sim.Time.span;
}

let default =
  {
    cpus = 5;
    cpu_speedup = 1.0;
    ethernet_mbps = 10.0;
    qbus_mbps = 16.0;
    udp_checksums = true;
    cut_through = false;
    busy_wait = false;
    interrupt_code = Assembly;
    traditional_demux = false;
    redesigned_header = false;
    raw_ethernet = false;
    hand_runtime = false;
    hand_stubs = false;
    uniproc_fix = false;
    streaming_results = false;
    deqna_staging_frames = 8;
    idle_load_cpus = 0.15;
    retransmit_after = Sim.Time.ms 600;
  }

let uniprocessor = { default with cpus = 1; uniproc_fix = true }

let validate t =
  if t.cpus < 1 then Error "cpus must be >= 1"
  else if t.cpu_speedup <= 0. then Error "cpu_speedup must be positive"
  else if t.ethernet_mbps <= 0. then Error "ethernet_mbps must be positive"
  else if t.qbus_mbps <= 0. then Error "qbus_mbps must be positive"
  else if t.deqna_staging_frames < 1 then Error "deqna_staging_frames must be >= 1"
  else if t.idle_load_cpus < 0. then Error "idle_load_cpus must be >= 0"
  else if Sim.Time.span_is_negative t.retransmit_after then Error "retransmit_after must be >= 0"
  else Ok t
