(** Configuration of one simulated Firefly and its RPC software.

    {!default} reproduces the machine the paper measured: 5 MicroVAX II
    CPUs (~1 MIPS), a 16 Mbit/s QBus, a DEQNA with no QBus/Ethernet
    overlap, a 10 Mbit/s Ethernet, software UDP checksums, the
    assembly-language interrupt path, and automatically generated stubs.
    Every "improvement" the paper speculates about in §4.2 — and the
    degraded variants of §4.1 and §5 — is one field away. *)

(** The three versions of the Ethernet-interrupt main path measured in
    Table IX. *)
type interrupt_code =
  | Original_modula2  (** 758 µs *)
  | Final_modula2  (** 547 µs *)
  | Assembly  (** 177 µs — the installed system *)

type t = {
  cpus : int;
      (** processors available to the scheduler on this machine (paper
          §5 varies this 1–5). *)
  cpu_speedup : float;
      (** multiplier on MicroVAX II speed; all software costs divide by
          this (§4.2.3 considers 3.0). *)
  ethernet_mbps : float;  (** network bit rate (§4.2.2 considers 100). *)
  qbus_mbps : float;
      (** usable QBus bandwidth for the DEQNA; scales the per-byte part
          of controller transfer latency. *)
  udp_checksums : bool;  (** software end-to-end checksums (§4.2.4). *)
  cut_through : bool;
      (** controller overlaps QBus transfer with Ethernet transfer
          (§4.2.1's "different network controller"). *)
  busy_wait : bool;
      (** caller/server threads spin for packets instead of blocking,
          eliminating the two scheduler wakeups (§4.2.7). *)
  interrupt_code : interrupt_code;
  traditional_demux : bool;
      (** ablation of §3.2's key design choice: instead of
          demultiplexing RPC packets in the interrupt routine and waking
          the RPC thread directly, the interrupt wakes a datalink thread
          which demultiplexes — "the traditional approach ... doubles
          the number of wakeups required for an RPC". *)
  redesigned_header : bool;
      (** easier-to-parse RPC header + better hash: ~200 µs per RPC
          (§4.2.5). *)
  raw_ethernet : bool;
      (** RPC directly on Ethernet datagrams, no IP/UDP headers; saves
          ~100 µs per RPC and 28 bytes per packet (§4.2.6). *)
  hand_runtime : bool;
      (** RPC runtime routines (not stubs) recoded in machine code: the
          422 µs of Table VII runtime divides by 3 (§4.2.8). *)
  hand_stubs : bool;
      (** the RPC Exerciser's hand-produced stubs: no marshalling,
          tighter calling sequences; 140 µs faster on Null(), ~600 µs on
          MaxResult(b) (§5). *)
  uniproc_fix : bool;
      (** the "swapped lines" of §5: costs ~100 µs of multiprocessor
          latency but removes the uniprocessor lost-packet bug. *)
  streaming_results : bool;
      (** §5's speculation, implemented: multi-packet results are
          blasted back-to-back (Amoeba/V/Sprite style) instead of
          stop-and-wait acknowledged fragment by fragment. *)
  deqna_staging_frames : int;
      (** internal controller packet RAM, in frames: a frame arriving
          while the staging RAM is full is lost (receiver overrun).
          Sized so the paper's closed-loop RPC workload runs loss-free,
          as the real system did. *)
  idle_load_cpus : float;
      (** background threads' CPU draw; the paper observed 0.15 CPUs on
          an idle machine. *)
  retransmit_after : Sim.Time.span;
      (** first retransmission timeout; the paper's §5 bug cost "about
          600 milliseconds waiting for a retransmission". *)
}

val default : t

val uniprocessor : t
(** [default] with a single CPU and the §5 fix applied. *)

val validate : t -> (t, string) result
(** Rejects nonsensical values (zero CPUs, non-positive rates...). *)
