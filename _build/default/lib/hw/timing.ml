type t = { cfg : Config.t }

let create cfg = { cfg }
let config t = t.cfg

(* Software microseconds, scaled by CPU speed. *)
let sw t us = Sim.Time.us_f (us /. t.cfg.Config.cpu_speedup)

(* {1 Table VI} *)

let finish_udp_header t =
  let base = if t.cfg.Config.raw_ethernet then 25. else 59. in
  let base = if t.cfg.Config.redesigned_header then base -. 30. else base in
  sw t (Float.max 0. base)

let udp_checksum t ~bytes =
  if not t.cfg.Config.udp_checksums then Sim.Time.zero_span
  else sw t (24.7 +. (0.2743 *. float_of_int bytes))

let trap_to_nub t = sw t 37.
let queue_packet t = sw t 39.
let ipi_latency _ = Sim.Time.us 10
let ipi_handler t = sw t 76.
let activate_controller t = sw t 22.

let qbus_transmit t ~bytes =
  let per_byte = 0.5174 *. (16.0 /. t.cfg.Config.qbus_mbps) in
  Sim.Time.us_f (31.7 +. (per_byte *. float_of_int bytes))

let wire_time t ~bytes =
  Sim.Time.us_f (float_of_int (bytes * 8) /. t.cfg.Config.ethernet_mbps)

let qbus_receive t ~bytes =
  let per_byte = 0.5243 *. (16.0 /. t.cfg.Config.qbus_mbps) in
  Sim.Time.us_f (41.4 +. (per_byte *. float_of_int bytes))

let io_interrupt t = sw t 14.

let rx_demux t =
  let base =
    match t.cfg.Config.interrupt_code with
    | Config.Assembly -> 177.
    | Config.Final_modula2 -> 547.
    | Config.Original_modula2 -> 758.
  in
  let base = if t.cfg.Config.redesigned_header then base -. 70. else base in
  sw t (Float.max 0. base)

let traditional_interrupt t = sw t 40.
let wakeup t = if t.cfg.Config.busy_wait then sw t 10. else sw t 220.
let interrupt_epilogue t = sw t 400.

(* {1 Table VII} *)

let runtime t us = if t.cfg.Config.hand_runtime then sw t (us /. 3.) else sw t us

let caller_loop t = sw t 16.

(* The Exerciser's hand-produced stubs make Null() 140 us faster than
   the generated ones (§5); the whole saving is carried in the two stub
   constants: (90 - 10) + (68 - 8) = 140. *)
let calling_stub t = if t.cfg.Config.hand_stubs then sw t 10. else sw t 90.
let starter t = runtime t 128.
let transporter_send t = runtime t 27.
let receiver_recv t = runtime t 158.
let server_stub t = if t.cfg.Config.hand_stubs then sw t 8. else sw t 68.
let receiver_send t = runtime t 27.
let transporter_recv t = runtime t 49.
let ender t = runtime t 33.
let unattributed_per_packet t = sw t 65.5
let register_call t = sw t 30.

(* {1 Tables II-V} *)

let marshalling t us = if t.cfg.Config.hand_stubs then Sim.Time.zero_span else sw t us

let marshal_int_caller t = marshalling t 4.
let marshal_int_server t = marshalling t 4.

let marshal_fixed_array t ~bytes = marshalling t (18.8 +. (0.3030 *. float_of_int bytes))
let marshal_var_array t ~bytes = marshalling t (114.7 +. (0.3024 *. float_of_int bytes))
let marshal_text_nil t = marshalling t 89.

let text_cost bytes = 375.8 +. (2.213 *. float_of_int bytes)

let marshal_text_caller t ~bytes = marshalling t (0.35 *. text_cost bytes)
let marshal_text_server t ~bytes = marshalling t (0.65 *. text_cost bytes)

(* {1 Local transport}

   937 us for a local Null() decomposes as: loop 16 + calling stub 90 +
   server stub 68 + Null body 10 (all shared with the Ethernet path),
   plus the local runtime below (283), two wakeups (440) and two
   dispatches (30): 16+90+68+10+283+440+30 = 937. *)

let local_starter t = runtime t 70.
let local_transporter_send t = runtime t 35.
let local_receiver t = runtime t 80.
let local_receiver_send t = runtime t 35.
let local_transporter_recv t = runtime t 35.
let local_ender t = runtime t 28.

(* {1 Uniprocessor penalties (calibrated against Table X)} *)

let on_uniproc t us = if t.cfg.Config.cpus = 1 then sw t us else Sim.Time.zero_span

(* Most of the uniprocessor slowdown emerges naturally in the simulator
   (interrupt epilogues and overlapped work serializing onto the single
   CPU); these residual constants close the gap to Table X's measured
   3.96 ms (1x5) and 4.81 ms (1x1) Exerciser Null(). *)
let uniproc_interrupt_entry t = on_uniproc t 10.
let uniproc_wakeup_extra t = on_uniproc t 30.
let uniproc_caller_send_extra t = on_uniproc t 700.

(* On a uniprocessor the fast path "is not followed exactly": received
   packets take a longer, copying path through the scheduler (§5).
   The per-byte term reproduces Table XI's size-dependent gap between
   uniprocessor Null() and MaxResult() costs. *)
let uniproc_rx_extra t ~bytes = on_uniproc t (100. +. (0.45 *. float_of_int bytes))

let multiproc_fix_cost t =
  if t.cfg.Config.uniproc_fix && t.cfg.Config.cpus > 1 then sw t 100. else Sim.Time.zero_span

let uniproc_bug_loss_probability t =
  if t.cfg.Config.cpus = 1 && not t.cfg.Config.uniproc_fix then 0.014 else 0.

(* {1 Miscellaneous} *)

let dispatch t = sw t 15.
let busy_wait_poll t = sw t 5.
let cut_through_setup _ = Sim.Time.us 10
let deqna_tx_recovery _ = Sim.Time.us 200
let deqna_rx_recovery _ ~bytes = ignore bytes; Sim.Time.us 100
let interframe_gap t = Sim.Time.us_f (96. /. t.cfg.Config.ethernet_mbps)
let rpc_header_bytes = 32

let frame_overhead_bytes t =
  if t.cfg.Config.raw_ethernet then Net.Ethernet.header_size + rpc_header_bytes
  else Net.Ethernet.header_size + Net.Ipv4.header_size + Net.Udp.header_size + rpc_header_bytes

let max_payload_bytes t = Net.Ethernet.max_frame_size - frame_overhead_bytes t
