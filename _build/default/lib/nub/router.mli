(** An IP gateway joining two Ethernet segments.

    The paper keeps RPC on IP/UDP precisely so calls can cross gateways
    (§4.2.6: dropping IP "would make it impossible to use RPC via an IP
    gateway"; §7: RPC "works over wide area networks").  This router
    makes that concrete: it store-and-forwards IPv4 packets between two
    segments through DEQNA-class controllers, decrementing TTL and
    recomputing the IP header checksum on the real bytes.  The UDP
    checksum — computed over the pseudo-header of the unchanged
    source/destination addresses — survives forwarding, which is exactly
    the end-to-end property the paper's design relies on.

    Hosts reach off-segment peers by addressing their frames to the
    gateway's MAC; [Rpc.Binder] learns that from the resolver installed
    by the world builder (see {!Workload}-style setups or
    [examples/wan_rpc.ml]). *)

type t

type port = A | B

val create :
  Sim.Engine.t ->
  name:string ->
  config:Hw.Config.t ->
  link_a:Hw.Ether_link.t ->
  station_a:int ->
  ip_a:Net.Ipv4.Addr.t ->
  link_b:Hw.Ether_link.t ->
  station_b:int ->
  ip_b:Net.Ipv4.Addr.t ->
  ?forward_cost:Sim.Time.span ->
  unit ->
  t
(** A two-port router with a single forwarding CPU.  [forward_cost]
    (default 300 µs) is the per-packet software forwarding time, in the
    range of late-1980s IP routers. *)

val port_mac : t -> port -> Net.Mac.t
val port_ip : t -> port -> Net.Ipv4.Addr.t

val add_route : t -> Net.Ipv4.Addr.t -> mask_bits:int -> port -> unit
(** Longest-prefix-match forwarding entry. *)

val add_host : t -> port -> Net.Ipv4.Addr.t -> Net.Mac.t -> unit
(** Static ARP: the next-hop MAC for a directly attached host. *)

(** {1 Statistics} *)

val forwarded : t -> int
val dropped_no_route : t -> int
val dropped_ttl : t -> int
val dropped_no_arp : t -> int
val dropped_not_ip : t -> int
