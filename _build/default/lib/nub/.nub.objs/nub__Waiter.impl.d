lib/nub/waiter.ml: Hw Option Sim
