lib/nub/machine.ml: Bufpool Driver Hw Net Option Sim Waiter
