lib/nub/driver.mli: Bufpool Hw Sim Stdlib
