lib/nub/bufpool.mli:
