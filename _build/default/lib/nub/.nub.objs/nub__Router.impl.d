lib/nub/router.ml: Bufpool Bytes Hashtbl Hw Int32 List Net Sim Wire
