lib/nub/waiter.mli: Hw Sim
