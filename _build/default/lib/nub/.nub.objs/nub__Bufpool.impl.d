lib/nub/bufpool.ml: Sim
