lib/nub/router.mli: Hw Net Sim
