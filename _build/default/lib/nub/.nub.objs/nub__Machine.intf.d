lib/nub/machine.mli: Bufpool Driver Hw Net Sim Waiter
