lib/nub/driver.ml: Bufpool Bytes Hw Sim
