type ty =
  | T_int
  | T_fixed_bytes of int
  | T_var_bytes of int
  | T_text of int
  | T_bool
  | T_int16
  | T_real
  | T_record of ty list
  | T_seq of ty * int

type mode = Value | Var_in | Var_out

type arg = { arg_name : string; ty : ty; mode : mode }
type proc = { proc_name : string; args : arg list }
type interface = { intf_name : string; intf_version : int; procs : proc array }

let rec validate_ty = function
  | T_fixed_bytes n when n <= 0 -> invalid_arg "Idl.arg: fixed array size must be positive"
  | T_var_bytes n when n <= 0 -> invalid_arg "Idl.arg: var array max must be positive"
  | T_text n when n < 0 -> invalid_arg "Idl.arg: text max must be >= 0"
  | T_record [] -> invalid_arg "Idl.arg: empty record"
  | T_record fields -> List.iter validate_ty fields
  | T_seq (_, max) when max <= 0 -> invalid_arg "Idl.arg: sequence max must be positive"
  | T_seq (elt, _) -> validate_ty elt
  | T_int | T_fixed_bytes _ | T_var_bytes _ | T_text _ | T_bool | T_int16 | T_real -> ()

let arg ?(mode = Value) arg_name ty =
  validate_ty ty;
  { arg_name; ty; mode }

let proc proc_name args = { proc_name; args }

let rec wire_size_bound = function
  | T_int -> 4
  | T_fixed_bytes n -> n
  | T_var_bytes n -> 2 + n
  | T_text n -> 3 + n
  | T_bool -> 1
  | T_int16 -> 2
  | T_real -> 8
  | T_record fields -> List.fold_left (fun acc f -> acc + wire_size_bound f) 0 fields
  | T_seq (elt, max) -> 2 + (max * wire_size_bound elt)

let interface ~name ~version procs =
  if String.length name = 0 then invalid_arg "Idl.interface: empty name";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p.proc_name then
        invalid_arg ("Idl.interface: duplicate procedure " ^ p.proc_name);
      Hashtbl.add seen p.proc_name ();
      let bound =
        List.fold_left (fun acc a -> acc + wire_size_bound a.ty) 0 p.args
      in
      if bound > 0xffff then
        invalid_arg ("Idl.interface: arguments of " ^ p.proc_name ^ " too large"))
    procs;
  { intf_name = name; intf_version = version; procs = Array.of_list procs }

(* FNV-1a over name and version: stable across runs, unlike
   [Hashtbl.hash] which is documented to vary between OCaml versions. *)
let interface_id t =
  let h = ref 0x811c9dc5 in
  let feed c = h := (!h lxor Char.code c) * 0x01000193 land 0x3fffffff in
  String.iter feed t.intf_name;
  feed ':';
  String.iter feed (string_of_int t.intf_version);
  Int32.of_int !h

let find_proc t name =
  let rec go i =
    if i >= Array.length t.procs then raise Not_found
    else if String.equal t.procs.(i).proc_name name then i
    else go (i + 1)
  in
  go 0

let rec pp_ty fmt = function
  | T_int -> Format.pp_print_string fmt "INTEGER"
  | T_fixed_bytes n -> Format.fprintf fmt "ARRAY [0..%d] OF CHAR" (n - 1)
  | T_var_bytes n -> Format.fprintf fmt "ARRAY OF CHAR (max %d)" n
  | T_text n -> Format.fprintf fmt "Text.T (max %d)" n
  | T_bool -> Format.pp_print_string fmt "BOOLEAN"
  | T_int16 -> Format.pp_print_string fmt "INTEGER16"
  | T_real -> Format.pp_print_string fmt "LONGREAL"
  | T_record fields ->
    Format.pp_print_string fmt "RECORD ";
    List.iteri
      (fun i f ->
        if i > 0 then Format.pp_print_string fmt "; ";
        pp_ty fmt f)
      fields;
    Format.pp_print_string fmt " END"
  | T_seq (elt, max) -> Format.fprintf fmt "SEQUENCE (max %d) OF %a" max pp_ty elt

let pp_mode fmt = function
  | Value -> ()
  | Var_in -> Format.pp_print_string fmt "VAR IN "
  | Var_out -> Format.pp_print_string fmt "VAR OUT "

let pp_interface fmt t =
  Format.fprintf fmt "INTERFACE %s (v%d);@." t.intf_name t.intf_version;
  Array.iter
    (fun p ->
      Format.fprintf fmt "  PROCEDURE %s(" p.proc_name;
      List.iteri
        (fun i a ->
          if i > 0 then Format.pp_print_string fmt "; ";
          Format.fprintf fmt "%a%s: %a" pp_mode a.mode a.arg_name pp_ty a.ty)
        p.args;
      Format.fprintf fmt ");@.")
    t.procs
