(** The DECNet transport — the paper's third bind-time transport option
    (§3.1: "transport to another machine by a custom RPC packet exchange
    protocol layered on IP/UDP, by DECNet to another machine, and by
    shared memory").

    This is an NSP-flavoured {e connection-oriented} sequenced-message
    service over raw Ethernet frames (DECNet's ethertype 0x6003): a
    three-segment handshake establishes a connection, data segments are
    sequenced and stop-and-wait acknowledged with retransmission,
    arbitrary-size messages are segmented and reassembled, and both
    sides detect duplicates by sequence number.  Frames carry a real
    software checksum, verified end to end.

    The paper gives no DECNet cost figures; the per-segment software
    costs here (see the constants in the implementation) are
    representative of a general-purpose transport on a 1-MIPS machine —
    deliberately heavier than the custom RPC path, which is the reason
    the custom path exists.

    The module is pure transport; RPC-over-DECNet glue (request/reply
    framing and dispatch) lives in {!Runtime}. *)

type endpoint
type conn

val ethertype : int
(** 0x6003. *)

val endpoint : Node.t -> endpoint
(** The node's DECNet protocol engine; created on first use, registered
    with the node's interrupt demultiplexer, and memoized — repeated
    calls return the same engine. *)

val listen : endpoint -> space:int -> (conn -> unit) -> unit
(** Accept connections addressed to [space]; the callback runs in a
    fresh thread on the endpoint's machine.  Idempotent per space
    (subsequent calls replace the handler for {e new} connections). *)

val connect :
  endpoint ->
  Hw.Cpu_set.ctx ->
  peer:Net.Mac.t ->
  space:int ->
  ?retransmit_after:Sim.Time.span ->
  ?max_retries:int ->
  unit ->
  conn
(** Opens a connection (blocks through the handshake).
    @raise Rpc_error.Rpc ([Call_failed]) if the peer never confirms. *)

val send_message : conn -> Hw.Cpu_set.ctx -> Stdlib.Bytes.t -> unit
(** Segments, transmits and waits for the acknowledgment of every
    segment.  Concurrent senders on one connection are serialized.
    @raise Rpc_error.Rpc ([Call_failed]) on retransmission exhaustion
    or a closed connection. *)

val recv_message : conn -> Hw.Cpu_set.ctx -> timeout:Sim.Time.span -> Stdlib.Bytes.t option
(** Next complete reassembled message, [None] on timeout or close. *)

val close : conn -> Hw.Cpu_set.ctx -> unit
(** Sends a disconnect and tears the connection down (idempotent). *)

val is_open : conn -> bool

(** {1 Statistics} *)

val connections_accepted : endpoint -> int
val segments_sent : endpoint -> int
val segments_retransmitted : endpoint -> int
val checksum_rejects : endpoint -> int
