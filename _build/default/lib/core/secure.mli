(** Secured calls — the "structural hooks for authenticated and secure
    calls" the paper says the design contains (§7) but never exercises.

    A binding and an export that share a key get sealed payloads: the
    argument/result bytes are enciphered with a keystream derived from
    (key, call sequence number) and carry an 8-byte authenticator, so a
    receiver with the key detects tampering, replay across sequence
    numbers, and callers without the key.  Sealing happens before
    fragmentation and unsealing after reassembly, so multi-packet calls
    are covered by one authenticator.

    The cipher here is a keyed xorshift keystream and the authenticator
    a keyed checksum — {e placeholders} with the right interfaces and a
    period-appropriate software cost (about 1 µs/byte at 1 MIPS, the
    ballpark of software DES on a MicroVAX II), not cryptography.  Key
    distribution is out of band, as the paper's hooks assumed. *)

type key

val key_of_string : string -> key
(** Derives a key from a passphrase. *)

val seal : key -> seq:int -> Stdlib.Bytes.t -> Stdlib.Bytes.t
(** Encipher and append the authenticator (adds {!overhead_bytes}). *)

val unseal : key -> seq:int -> Stdlib.Bytes.t -> (Stdlib.Bytes.t, string) result
(** Verify and decipher.  Fails on a wrong key, a different sequence
    number, truncation, or any flipped bit. *)

val overhead_bytes : int
(** 8. *)

val cost : Hw.Timing.t -> bytes:int -> Sim.Time.span
(** Per-end software cost of sealing or unsealing [bytes] of payload:
    40 µs + 1.0 µs/byte, CPU-scaled. *)
