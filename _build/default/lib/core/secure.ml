type key = int64

let key_of_string s =
  (* FNV-1a, 64-bit *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let overhead_bytes = 8

(* xorshift64* keystream seeded from (key, seq). *)
let keystream key ~seq =
  let state = ref (Int64.logxor key (Int64.of_int ((seq * 0x9e3779b9) lor 1))) in
  fun () ->
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    Int64.to_int (Int64.mul x 0x2545F4914F6CDD1DL) land 0xff

let cipher key ~seq b =
  let ks = keystream key ~seq in
  Bytes.map (fun c -> Char.chr (Char.code c lxor ks ())) b

(* Keyed authenticator: 64-bit FNV over key material, seq and the
   plaintext. *)
let tag key ~seq b =
  let h = ref (Int64.logxor 0xcbf29ce484222325L key) in
  let feed v =
    h := Int64.logxor !h (Int64.of_int v);
    h := Int64.mul !h 0x100000001b3L
  in
  feed seq;
  Bytes.iter (fun c -> feed (Char.code c)) b;
  feed (Bytes.length b);
  !h

let seal key ~seq plain =
  let enc = cipher key ~seq plain in
  let out = Bytes.create (Bytes.length enc + overhead_bytes) in
  Bytes.blit enc 0 out 0 (Bytes.length enc);
  Bytes.set_int64_be out (Bytes.length enc) (tag key ~seq plain);
  out

let unseal key ~seq sealed =
  let n = Bytes.length sealed - overhead_bytes in
  if n < 0 then Error "secure: truncated payload"
  else begin
    let carried = Bytes.get_int64_be sealed n in
    let plain = cipher key ~seq (Bytes.sub sealed 0 n) in
    if Int64.equal carried (tag key ~seq plain) then Ok plain
    else Error "secure: authenticator mismatch"
  end

let cost timing ~bytes =
  let speedup = (Hw.Timing.config timing).Hw.Config.cpu_speedup in
  Sim.Time.us_f ((40. +. (1.0 *. float_of_int bytes)) /. speedup)
