lib/core/proto.ml: Format Hashtbl Int32 Net Printf Wire
