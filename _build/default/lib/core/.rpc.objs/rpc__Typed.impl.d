lib/core/typed.ml: Array Idl Int32 List Marshal Printf Rpc_error Runtime String
