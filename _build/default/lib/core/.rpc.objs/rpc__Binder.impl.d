lib/core/binder.ml: Decnet Frames Hashtbl Idl Nub Printf Rpc_error Runtime
