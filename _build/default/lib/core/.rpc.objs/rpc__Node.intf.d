lib/core/node.mli: Frames Hw Nub Proto Sim Stdlib
