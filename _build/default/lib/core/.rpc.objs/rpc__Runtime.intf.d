lib/core/runtime.mli: Decnet Frames Hw Idl Marshal Net Node Nub Proto Secure Sim
