lib/core/binder.mli: Frames Idl Nub Runtime Secure
