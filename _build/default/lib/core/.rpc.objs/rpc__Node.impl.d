lib/core/node.ml: Bytes Format Frames Hashtbl Hw Net Nub Printf Proto Queue Sim
