lib/core/proto.mli: Format Net Wire
