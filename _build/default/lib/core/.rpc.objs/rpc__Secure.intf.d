lib/core/secure.mli: Hw Sim Stdlib
