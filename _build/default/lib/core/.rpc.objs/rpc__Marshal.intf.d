lib/core/marshal.mli: Format Hw Idl Sim Stdlib Wire
