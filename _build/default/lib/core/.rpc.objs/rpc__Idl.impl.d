lib/core/idl.ml: Array Char Format Hashtbl Int32 List String
