lib/core/rpc_error.ml: Printexc Printf
