lib/core/typed.mli: Hw Idl Runtime Stdlib
