lib/core/frames.mli: Hw Net Proto Stdlib
