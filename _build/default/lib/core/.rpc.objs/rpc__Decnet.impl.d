lib/core/decnet.ml: Buffer Bytes Fun Hashtbl Hw List Net Node Nub Queue Rpc_error Sim Wire
