lib/core/frames.ml: Bytes Hw Net Printf Proto Wire
