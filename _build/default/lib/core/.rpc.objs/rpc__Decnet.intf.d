lib/core/decnet.mli: Hw Net Node Sim Stdlib
