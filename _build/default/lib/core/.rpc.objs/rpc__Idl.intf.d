lib/core/idl.mli: Format
