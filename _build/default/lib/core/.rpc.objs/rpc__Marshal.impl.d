lib/core/marshal.ml: Bool Bytes Format Hw Idl Int Int32 Int64 List Option Printf Rpc_error Sim String Wire
