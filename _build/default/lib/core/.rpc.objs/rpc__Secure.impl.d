lib/core/secure.ml: Bytes Char Hw Int64 Sim String
