lib/core/runtime.ml: Array Buffer Bytes Decnet Frames Fun Hashtbl Hw Idl Int32 List Marshal Net Node Nub Option Printexc Printf Proto Queue Result Rpc_error Secure Sim Wire
