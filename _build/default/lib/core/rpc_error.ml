type t =
  | Call_failed of string
  | Unbound_interface of string
  | Bad_procedure of int
  | Marshal_failure of string
  | Protocol_violation of string

exception Rpc of t

let to_string = function
  | Call_failed s -> "call failed: " ^ s
  | Unbound_interface s -> "unbound interface: " ^ s
  | Bad_procedure i -> Printf.sprintf "bad procedure index %d" i
  | Marshal_failure s -> "marshalling failure: " ^ s
  | Protocol_violation s -> "protocol violation: " ^ s

let fail e = raise (Rpc e)

let () =
  Printexc.register_printer (function
    | Rpc e -> Some ("Rpc_error.Rpc: " ^ to_string e)
    | _ -> None)
