(** The RPC packet-exchange protocol header (32 bytes on the wire).

    The protocol follows Birrell and Nelson's Cedar RPC design (paper
    §3.1): calls are identified by an {e activity} (one calling thread)
    and a monotonically increasing sequence number; a result implicitly
    acknowledges its call, and the activity's next call implicitly
    acknowledges the previous result.  Explicit [Ack]s are only used for
    the fragments of multi-packet calls/results and when a retransmitted
    call asks for one ([please_ack]); [Busy] tells a retransmitting
    caller that the server is still working.

    32 bytes is chosen so that Ethernet (14) + IP (20) + UDP (8) + RPC
    header make the paper's 74-byte minimum packet. *)

(** One calling thread's identity, globally unique. *)
module Activity : sig
  type t = { caller_ip : Net.Ipv4.Addr.t; caller_space : int; thread : int }

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

type ptype =
  | Call
  | Result
  | Ack  (** acknowledges the fragment named by [seq]/[frag_idx] *)
  | Busy  (** server has the call and is still working *)
  | Error_reply  (** server-side dispatch failure, payload = message *)

type header = {
  ptype : ptype;
  please_ack : bool;
      (** sender is retransmitting and wants an explicit ack *)
  no_frag_ack : bool;
      (** streamed transfer (the §5 Amoeba/V/Sprite-style extension):
          fragments are blasted back-to-back and the receiver must not
          acknowledge each one *)
  secured : bool;
      (** payload sealed under a binding key (the §7 authenticated-call
          hooks, see {!Secure}) *)
  activity : Activity.t;
  seq : int;  (** call sequence number within the activity *)
  server_space : int;
  interface_id : int32;
  proc_idx : int;
  frag_idx : int;
  frag_count : int;
  data_len : int;  (** payload bytes following the header *)
  checksum : int;
      (** end-to-end checksum in raw-Ethernet mode (§4.2.6); 0 when
          UDP provides the checksum *)
}

val size : int
(** 32. *)

val magic : int

val encode : Wire.Bytebuf.Writer.t -> header -> unit
val decode : Wire.Bytebuf.Reader.t -> (header, string) result

val pp : Format.formatter -> header -> unit
