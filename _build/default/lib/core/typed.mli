(** Typed stubs — the stub compiler's output, as a typed OCaml API.

    The dynamic {!Runtime.call} interface traffics in {!Marshal.value}
    lists; this module derives {e typed} caller stubs and server
    implementations from a declarative signature, so application code
    reads like the Modula-2+ the paper's stubs were generated from:

    {[
      open Rpc.Typed

      (* PROCEDURE Add(x, y: INTEGER; VAR OUT sum: INTEGER); *)
      let add = procedure "add" (param "x" int @-> param "y" int
                                 @-> returning (out "sum" int))

      (* PROCEDURE Grade(score: INTEGER; VAR OUT passed: BOOLEAN;
                         VAR OUT label: Text.T); *)
      let grade = procedure "grade"
          (param "score" int
           @-> returning (out2 (out "passed" bool) (out "label" (text 32))))

      let intf = interface ~name:"Math" ~version:1 [ P add; P grade ]

      (* server *)
      Binder.export binder rt intf
        ~impls:(impls intf [ I (add, fun x y -> x + y);
                             I (grade, fun s -> (s >= 60, string_of_int s)) ])
        ~workers:4

      (* caller: an ordinary, fully typed function call *)
      let sum : int = call binding client ctx add 20 22
    ]}

    Conventions: the wire procedure's arguments are the declared
    parameters in order, followed by the outputs in order ([VAR OUT]
    results are returned, not passed).  Typed implementations do not see
    the CPU context; procedures that must charge simulated compute time
    use the dynamic API instead. *)

(** Bidirectional codec for one value. *)
type 'a spec

val int : int spec  (** 4-byte integer (OCaml [int], range-checked) *)

val int32 : int32 spec
val int16 : int spec
val bool : bool spec
val real : float spec
val text : int -> string spec  (** non-NIL Text.T up to [max] bytes *)

val text_opt : int -> string option spec  (** Text.T, [None] = NIL *)

val bytes : max:int -> Stdlib.Bytes.t spec  (** variable-length array *)

val fixed_bytes : int -> Stdlib.Bytes.t spec  (** fixed-length array *)

val seq : 'a spec -> max:int -> 'a list spec
val pair : 'a spec -> 'b spec -> ('a * 'b) spec  (** a two-field record *)

val triple : 'a spec -> 'b spec -> 'c spec -> ('a * 'b * 'c) spec

(** {1 Signatures} *)

type 'a param_decl
type 'a out_decl
type 'o outs
type 'f fn

val param : ?mode:[ `Value | `Var_in ] -> string -> 'a spec -> 'a param_decl
(** [mode] defaults to [`Value] for scalars/records and [`Var_in] for
    arrays (the paper's single-copy optimization for bulk data). *)

val out : string -> 'a spec -> 'a out_decl

val out0 : unit outs
val out1 : 'a out_decl -> 'a outs
val out2 : 'a out_decl -> 'b out_decl -> ('a * 'b) outs
val out3 : 'a out_decl -> 'b out_decl -> 'c out_decl -> ('a * 'b * 'c) outs

val returning : 'o outs -> 'o fn
val ( @-> ) : 'a param_decl -> 'b fn -> ('a -> 'b) fn

val noarg : 'b fn -> (unit -> 'b) fn
(** For procedures with no parameters: [procedure "null" (noarg
    (returning out0))] has stub type [unit -> unit], so neither the
    caller stub nor the implementation runs before it is applied. *)

type 'f procedure

val procedure : string -> 'f fn -> 'f procedure
val to_proc : _ procedure -> Idl.proc

type packed = P : _ procedure -> packed

val interface : name:string -> version:int -> packed list -> Idl.interface

(** {1 Caller side} *)

val call : Runtime.binding -> Runtime.client -> Hw.Cpu_set.ctx -> 'f procedure -> 'f
(** [call b client ctx p] is the typed stub: applying it to the
    declared parameters performs the RPC and returns the outputs.
    @raise Rpc_error.Rpc as {!Runtime.call} does, plus
    [Marshal_failure] on out-of-range values. *)

(** {1 Server side} *)

type impl_binding = I : 'f procedure * 'f -> impl_binding

val impls : Idl.interface -> impl_binding list -> Runtime.impl array
(** Orders the typed implementations to match the interface.
    @raise Invalid_argument if any procedure is missing or unknown. *)
