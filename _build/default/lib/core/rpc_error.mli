(** Errors surfaced to RPC callers and servers. *)

type t =
  | Call_failed of string
      (** Communication failure: the call was retransmitted until the
          retry budget ran out without an acknowledgment or result —
          the server machine is down or unreachable. *)
  | Unbound_interface of string  (** import found no exporter *)
  | Bad_procedure of int  (** procedure index out of range *)
  | Marshal_failure of string  (** argument/result type mismatch *)
  | Protocol_violation of string  (** malformed packet on an RPC port *)

exception Rpc of t

val to_string : t -> string
val fail : t -> 'a
(** [fail e] raises {!Rpc}. *)
