module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader

module Activity = struct
  type t = { caller_ip : Net.Ipv4.Addr.t; caller_space : int; thread : int }

  let equal a b =
    Net.Ipv4.Addr.equal a.caller_ip b.caller_ip
    && a.caller_space = b.caller_space && a.thread = b.thread

  let hash t = Hashtbl.hash (Net.Ipv4.Addr.to_int32 t.caller_ip, t.caller_space, t.thread)

  let pp fmt t =
    Format.fprintf fmt "%a/%d.%d" Net.Ipv4.Addr.pp t.caller_ip t.caller_space t.thread
end

type ptype = Call | Result | Ack | Busy | Error_reply

type header = {
  ptype : ptype;
  please_ack : bool;
  no_frag_ack : bool;
  secured : bool;
  activity : Activity.t;
  seq : int;
  server_space : int;
  interface_id : int32;
  proc_idx : int;
  frag_idx : int;
  frag_count : int;
  data_len : int;
  checksum : int;
}

let size = 32
let magic = 0x52
let version = 1

let ptype_code = function
  | Call -> 1
  | Result -> 2
  | Ack -> 3
  | Busy -> 4
  | Error_reply -> 5

let ptype_of_code = function
  | 1 -> Some Call
  | 2 -> Some Result
  | 3 -> Some Ack
  | 4 -> Some Busy
  | 5 -> Some Error_reply
  | _ -> None

let flag_please_ack = 0x01
let flag_no_frag_ack = 0x02
let flag_secured = 0x04

let encode w h =
  W.u8 w magic;
  W.u8 w version;
  W.u8 w (ptype_code h.ptype);
  W.u8 w
    ((if h.please_ack then flag_please_ack else 0)
    lor (if h.no_frag_ack then flag_no_frag_ack else 0)
    lor if h.secured then flag_secured else 0);
  W.u32 w (Net.Ipv4.Addr.to_int32 h.activity.Activity.caller_ip);
  W.u16 w h.activity.Activity.caller_space;
  W.u16 w h.activity.Activity.thread;
  W.u32 w (Int32.of_int h.seq);
  W.u16 w h.server_space;
  W.u32 w h.interface_id;
  W.u16 w h.proc_idx;
  W.u16 w h.frag_idx;
  W.u16 w h.frag_count;
  W.u16 w h.data_len;
  W.u16 w h.checksum

let decode r =
  if R.remaining r < size then Error "rpc: truncated header"
  else begin
    let m = R.u8 r in
    let v = R.u8 r in
    let pt = R.u8 r in
    let flags = R.u8 r in
    let caller_ip = Net.Ipv4.Addr.of_int32 (R.u32 r) in
    let caller_space = R.u16 r in
    let thread = R.u16 r in
    let seq = Int32.to_int (R.u32 r) land 0xffffffff in
    let server_space = R.u16 r in
    let interface_id = R.u32 r in
    let proc_idx = R.u16 r in
    let frag_idx = R.u16 r in
    let frag_count = R.u16 r in
    let data_len = R.u16 r in
    let checksum = R.u16 r in
    if m <> magic then Error "rpc: bad magic"
    else if v <> version then Error "rpc: bad version"
    else
      match ptype_of_code pt with
      | None -> Error (Printf.sprintf "rpc: unknown packet type %d" pt)
      | Some ptype ->
        if frag_count = 0 || frag_idx >= frag_count then Error "rpc: bad fragment numbering"
        else
          Ok
            {
              ptype;
              please_ack = flags land flag_please_ack <> 0;
              no_frag_ack = flags land flag_no_frag_ack <> 0;
              secured = flags land flag_secured <> 0;
              activity = { Activity.caller_ip; caller_space; thread };
              seq;
              server_space;
              interface_id;
              proc_idx;
              frag_idx;
              frag_count;
              data_len;
              checksum;
            }
  end

let pp fmt h =
  let pt =
    match h.ptype with
    | Call -> "call"
    | Result -> "result"
    | Ack -> "ack"
    | Busy -> "busy"
    | Error_reply -> "error"
  in
  Format.fprintf fmt "%s %a#%d if=%ld proc=%d frag=%d/%d len=%d%s" pt Activity.pp h.activity
    h.seq h.interface_id h.proc_idx h.frag_idx h.frag_count h.data_len
    (if h.please_ack then " please-ack" else "")
