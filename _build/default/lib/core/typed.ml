let fail fmt = Printf.ksprintf (fun s -> Rpc_error.fail (Rpc_error.Marshal_failure s)) fmt

type 'a spec = {
  ty : Idl.ty;
  inject : 'a -> Marshal.value;
  project : Marshal.value -> 'a;
  bulk : bool;  (** arrays default to VAR IN (single-copy) *)
}

let shape_error what = fail "typed stub: unexpected wire shape for %s" what

let int =
  {
    ty = Idl.T_int;
    inject =
      (fun v ->
        if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
          fail "int %d out of 32-bit range" v;
        Marshal.V_int (Int32.of_int v));
    project =
      (function
      | Marshal.V_int v -> Int32.to_int v
      | _ -> shape_error "int");
    bulk = false;
  }

let int32 =
  {
    ty = Idl.T_int;
    inject = (fun v -> Marshal.V_int v);
    project =
      (function
      | Marshal.V_int v -> v
      | _ -> shape_error "int32");
    bulk = false;
  }

let int16 =
  {
    ty = Idl.T_int16;
    inject = (fun v -> Marshal.V_int16 v);
    project =
      (function
      | Marshal.V_int16 v -> v
      | _ -> shape_error "int16");
    bulk = false;
  }

let bool =
  {
    ty = Idl.T_bool;
    inject = (fun v -> Marshal.V_bool v);
    project =
      (function
      | Marshal.V_bool v -> v
      | _ -> shape_error "bool");
    bulk = false;
  }

let real =
  {
    ty = Idl.T_real;
    inject = (fun v -> Marshal.V_real v);
    project =
      (function
      | Marshal.V_real v -> v
      | _ -> shape_error "real");
    bulk = false;
  }

let text max =
  {
    ty = Idl.T_text max;
    inject = (fun s -> Marshal.V_text (Some s));
    project =
      (function
      | Marshal.V_text (Some s) -> s
      | Marshal.V_text None -> fail "typed stub: unexpected NIL text"
      | _ -> shape_error "text");
    bulk = false;
  }

let text_opt max =
  {
    ty = Idl.T_text max;
    inject = (fun s -> Marshal.V_text s);
    project =
      (function
      | Marshal.V_text s -> s
      | _ -> shape_error "text_opt");
    bulk = false;
  }

let bytes ~max =
  {
    ty = Idl.T_var_bytes max;
    inject = (fun b -> Marshal.V_bytes b);
    project =
      (function
      | Marshal.V_bytes b -> b
      | _ -> shape_error "bytes");
    bulk = true;
  }

let fixed_bytes n =
  {
    ty = Idl.T_fixed_bytes n;
    inject = (fun b -> Marshal.V_bytes b);
    project =
      (function
      | Marshal.V_bytes b -> b
      | _ -> shape_error "fixed_bytes");
    bulk = true;
  }

let seq elt ~max =
  {
    ty = Idl.T_seq (elt.ty, max);
    inject = (fun vs -> Marshal.V_seq (List.map elt.inject vs));
    project =
      (function
      | Marshal.V_seq vs -> List.map elt.project vs
      | _ -> shape_error "seq");
    bulk = false;
  }

let pair a b =
  {
    ty = Idl.T_record [ a.ty; b.ty ];
    inject = (fun (x, y) -> Marshal.V_record [ a.inject x; b.inject y ]);
    project =
      (function
      | Marshal.V_record [ x; y ] -> (a.project x, b.project y)
      | _ -> shape_error "pair");
    bulk = false;
  }

let triple a b c =
  {
    ty = Idl.T_record [ a.ty; b.ty; c.ty ];
    inject = (fun (x, y, z) -> Marshal.V_record [ a.inject x; b.inject y; c.inject z ]);
    project =
      (function
      | Marshal.V_record [ x; y; z ] -> (a.project x, b.project y, c.project z)
      | _ -> shape_error "triple");
    bulk = false;
  }

(* {1 Signatures} *)

type 'a param_decl = { p_name : string; p_spec : 'a spec; p_mode : Idl.mode }
type 'a out_decl = { o_name : string; o_spec : 'a spec }

type _ outs =
  | Out0 : unit outs
  | Out1 : 'a out_decl -> 'a outs
  | Out2 : 'a out_decl * 'b out_decl -> ('a * 'b) outs
  | Out3 : 'a out_decl * 'b out_decl * 'c out_decl -> ('a * 'b * 'c) outs

type _ fn =
  | Returning : 'o outs -> 'o fn
  | Arrow : 'a param_decl * 'b fn -> ('a -> 'b) fn
  | Unit_arrow : 'b fn -> (unit -> 'b) fn

let param ?mode p_name p_spec =
  let p_mode =
    match mode with
    | Some `Value -> Idl.Value
    | Some `Var_in -> Idl.Var_in
    | None -> if p_spec.bulk then Idl.Var_in else Idl.Value
  in
  { p_name; p_spec; p_mode }

let out o_name o_spec = { o_name; o_spec }
let out0 = Out0
let out1 a = Out1 a
let out2 a b = Out2 (a, b)
let out3 a b c = Out3 (a, b, c)
let returning outs = Returning outs
let ( @-> ) p rest = Arrow (p, rest)
let noarg rest = Unit_arrow rest

type 'f procedure = { name : string; fn : 'f fn }

let procedure name fn = { name; fn }

let out_args : type o. o outs -> Idl.arg list = function
  | Out0 -> []
  | Out1 a -> [ Idl.arg ~mode:Idl.Var_out a.o_name a.o_spec.ty ]
  | Out2 (a, b) ->
    [ Idl.arg ~mode:Idl.Var_out a.o_name a.o_spec.ty;
      Idl.arg ~mode:Idl.Var_out b.o_name b.o_spec.ty ]
  | Out3 (a, b, c) ->
    [ Idl.arg ~mode:Idl.Var_out a.o_name a.o_spec.ty;
      Idl.arg ~mode:Idl.Var_out b.o_name b.o_spec.ty;
      Idl.arg ~mode:Idl.Var_out c.o_name c.o_spec.ty ]

let rec fn_args : type f. f fn -> Idl.arg list = function
  | Returning outs -> out_args outs
  | Arrow (p, rest) -> Idl.arg ~mode:p.p_mode p.p_name p.p_spec.ty :: fn_args rest
  | Unit_arrow rest -> fn_args rest

let to_proc t = Idl.proc t.name (fn_args t.fn)

type packed = P : _ procedure -> packed

let interface ~name ~version procs =
  Idl.interface ~name ~version (List.map (fun (P p) -> to_proc p) procs)

(* {1 Caller side} *)

let out_placeholders : type o. o outs -> Marshal.value list = function
  | Out0 -> []
  | Out1 a -> [ Marshal.placeholder a.o_spec.ty ]
  | Out2 (a, b) -> [ Marshal.placeholder a.o_spec.ty; Marshal.placeholder b.o_spec.ty ]
  | Out3 (a, b, c) ->
    [ Marshal.placeholder a.o_spec.ty;
      Marshal.placeholder b.o_spec.ty;
      Marshal.placeholder c.o_spec.ty ]

let project_outs : type o. o outs -> Marshal.value list -> o =
 fun outs values ->
  match outs, values with
  | Out0, [] -> ()
  | Out1 a, [ x ] -> a.o_spec.project x
  | Out2 (a, b), [ x; y ] -> (a.o_spec.project x, b.o_spec.project y)
  | Out3 (a, b, c), [ x; y; z ] ->
    (a.o_spec.project x, b.o_spec.project y, c.o_spec.project z)
  | _ -> fail "typed stub: result arity mismatch"

let inject_outs : type o. o outs -> o -> Marshal.value list =
 fun outs v ->
  match outs with
  | Out0 -> []
  | Out1 a -> [ a.o_spec.inject v ]
  | Out2 (a, b) ->
    let x, y = v in
    [ a.o_spec.inject x; b.o_spec.inject y ]
  | Out3 (a, b, c) ->
    let x, y, z = v in
    [ a.o_spec.inject x; b.o_spec.inject y; c.o_spec.inject z ]

let call binding client ctx (t : 'f procedure) : 'f =
  let intf = Runtime.binding_interface binding in
  let proc_idx =
    try Idl.find_proc intf t.name
    with Not_found -> fail "typed stub: procedure %s not in the bound interface" t.name
  in
  let rec build : type f. f fn -> Marshal.value list -> f =
   fun fn acc ->
    match fn with
    | Arrow (p, rest) -> fun a -> build rest (p.p_spec.inject a :: acc)
    | Unit_arrow rest -> fun () -> build rest acc
    | Returning outs ->
      let args = List.rev_append acc (out_placeholders outs) in
      let results = Runtime.call binding client ctx ~proc_idx ~args in
      project_outs outs results
  in
  build t.fn []

(* {1 Server side} *)

type impl_binding = I : 'f procedure * 'f -> impl_binding

let implement (I (t, f)) : Runtime.impl =
 fun _ctx values ->
  let rec apply : type g. g fn -> g -> Marshal.value list -> Marshal.value list =
   fun fn g vs ->
    match fn with
    | Arrow (p, rest) -> (
      match vs with
      | v :: vs -> apply rest (g (p.p_spec.project v)) vs
      | [] -> fail "typed stub: argument arity mismatch in %s" t.name)
    | Unit_arrow rest -> apply rest (g ()) vs
    | Returning outs ->
      (* [vs] holds the Var_out placeholders; the result supplies them *)
      inject_outs outs g
  in
  apply t.fn f values

let impls intf bindings =
  Array.map
    (fun (proc : Idl.proc) ->
      match
        List.find_opt (fun (I (t, _)) -> String.equal t.name proc.Idl.proc_name) bindings
      with
      | Some b -> implement b
      | None ->
        invalid_arg
          ("Typed.impls: no implementation for procedure " ^ proc.Idl.proc_name))
    intf.Idl.procs
