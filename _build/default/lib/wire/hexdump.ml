let to_string ?(pos = 0) ?len b =
  let len =
    match len with
    | Some l -> l
    | None -> Bytes.length b - pos
  in
  if pos < 0 || len < 0 || pos + len > Bytes.length b then invalid_arg "Hexdump: bad range";
  let buf = Buffer.create (len * 4) in
  let line_start = ref pos in
  while !line_start < pos + len do
    let n = min 16 (pos + len - !line_start) in
    Buffer.add_string buf (Printf.sprintf "%08x  " (!line_start - pos));
    for i = 0 to 15 do
      if i < n then
        Buffer.add_string buf (Printf.sprintf "%02x " (Char.code (Bytes.get b (!line_start + i))))
      else Buffer.add_string buf "   ";
      if i = 7 then Buffer.add_char buf ' '
    done;
    Buffer.add_string buf " |";
    for i = 0 to n - 1 do
      let c = Bytes.get b (!line_start + i) in
      Buffer.add_char buf (if c >= ' ' && c <= '~' then c else '.')
    done;
    Buffer.add_string buf "|\n";
    line_start := !line_start + 16
  done;
  Buffer.contents buf

let pp fmt b = Format.pp_print_string fmt (to_string b)
