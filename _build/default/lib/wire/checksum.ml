(* 16-bit ones-complement sum.  The accumulator is kept as a plain int
   and folded lazily; OCaml's 63-bit ints cannot overflow on any packet
   we handle (carry folding per 2 bytes adds at most 16 bits of excess
   per 2^47 bytes). *)

let fold s =
  let rec go s = if s > 0xffff then go ((s land 0xffff) + (s lsr 16)) else s in
  go s

let sum ?(init = 0) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then invalid_arg "Checksum.sum: bad range";
  let s = ref init in
  let i = ref pos in
  let stop = pos + len - 1 in
  while !i < stop do
    s := !s + Bytes.get_uint16_be b !i;
    i := !i + 2
  done;
  if len land 1 = 1 then s := !s + (Char.code (Bytes.get b (pos + len - 1)) lsl 8);
  fold !s

let finish s = lnot (fold s) land 0xffff
let checksum ?init b ~pos ~len = finish (sum ?init b ~pos ~len)

let verify ?init b ~pos ~len = fold (sum ?init b ~pos ~len) = 0xffff
