(** Byte-level serialization for packet headers and payloads.

    {!Writer} appends big-endian (network byte order) fields to a
    fixed-capacity buffer; {!Reader} consumes them with bounds checking.
    All multi-byte integers are big-endian, matching the IP/UDP headers
    the RPC transport really encodes. *)

exception Overflow of string
(** Raised when a write exceeds the buffer capacity or a read runs past
    the end of the data. *)

module Writer : sig
  type t

  val create : int -> t
  (** [create capacity] is an empty writer over a fresh buffer. *)

  val over : Stdlib.Bytes.t -> pos:int -> t
  (** [over buf ~pos] writes into an existing buffer starting at offset
      [pos] — how RPC stubs marshal directly into a shared packet
      buffer.  {!length} and {!patch_u16} positions are relative to
      [pos]. *)

  val length : t -> int
  (** Bytes written so far. *)

  val capacity : t -> int

  val u8 : t -> int -> unit
  (** [u8 w v] appends one byte; [v] must be in [0, 255]. *)

  val u16 : t -> int -> unit
  (** Appends a 16-bit big-endian value in [0, 0xffff]. *)

  val u32 : t -> int32 -> unit
  val bytes : t -> Stdlib.Bytes.t -> unit
  val sub : t -> Stdlib.Bytes.t -> pos:int -> len:int -> unit
  val string : t -> string -> unit

  val zeros : t -> int -> unit
  (** [zeros w n] appends [n] zero bytes (checksum placeholders,
      padding). *)

  val patch_u16 : t -> pos:int -> int -> unit
  (** [patch_u16 w ~pos v] overwrites the 16-bit field previously
      written at offset [pos]; used to fill in checksums and lengths
      after the fact. *)

  val contents : t -> Stdlib.Bytes.t
  (** A copy of the bytes written so far. *)

  val unsafe_buffer : t -> Stdlib.Bytes.t
  (** The underlying buffer, unscoped by {!length}; for checksumming in
      place without a copy.  Offsets into it are absolute — convert
      writer-relative positions with {!absolute_pos}. *)

  val absolute_pos : t -> int -> int
  (** [absolute_pos w p] is the offset in {!unsafe_buffer} of the
      writer-relative position [p]. *)
end

module Reader : sig
  type t

  val of_bytes : ?pos:int -> ?len:int -> Stdlib.Bytes.t -> t
  val remaining : t -> int
  val position : t -> int
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int32
  val bytes : t -> int -> Stdlib.Bytes.t
  val string : t -> int -> string
  val skip : t -> int -> unit

  val expect_end : t -> unit
  (** @raise Overflow if bytes remain unread; used by strict decoders. *)
end
