lib/wire/hexdump.ml: Buffer Bytes Char Format Printf
