lib/wire/hexdump.mli: Format Stdlib
