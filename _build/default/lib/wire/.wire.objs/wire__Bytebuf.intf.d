lib/wire/bytebuf.mli: Stdlib
