lib/wire/checksum.mli: Stdlib
