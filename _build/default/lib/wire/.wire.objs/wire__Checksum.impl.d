lib/wire/checksum.ml: Bytes Char
