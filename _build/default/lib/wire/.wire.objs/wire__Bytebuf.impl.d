lib/wire/bytebuf.ml: Bytes Char Printf String
