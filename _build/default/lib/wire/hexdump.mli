(** Conventional hex+ASCII dump of a byte range, for debugging packet
    encoders and for the examples' verbose modes. *)

val pp : Format.formatter -> Stdlib.Bytes.t -> unit

val to_string : ?pos:int -> ?len:int -> Stdlib.Bytes.t -> string
(** 16 bytes per line: offset, hex bytes, printable ASCII. *)
