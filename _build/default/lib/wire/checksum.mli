(** The Internet ones-complement checksum (RFC 1071).

    This is the checksum the Firefly computes in software over every UDP
    packet — 45 µs for a minimum RPC packet and 440 µs for a full one on
    a MicroVAX II, i.e. 7–16 % of an RPC (paper §4.2.4).  Here it is
    implemented for real and verified end-to-end by the simulated stack;
    the {e time} it costs the simulated CPUs is charged separately by
    the calibrated timing model. *)

val sum : ?init:int -> Stdlib.Bytes.t -> pos:int -> len:int -> int
(** [sum b ~pos ~len] is the running ones-complement sum (not yet
    complemented) of the given range, folding an odd trailing byte as
    the high octet per RFC 1071.  [init] threads a previous partial sum
    so multi-region sums (pseudo-header + payload) compose. *)

val finish : int -> int
(** [finish s] complements and folds a running sum into a 16-bit
    checksum field value. *)

val checksum : ?init:int -> Stdlib.Bytes.t -> pos:int -> len:int -> int
(** [checksum b ~pos ~len] = [finish (sum b ~pos ~len)]. *)

val verify : ?init:int -> Stdlib.Bytes.t -> pos:int -> len:int -> bool
(** [verify b ~pos ~len] is [true] iff the range, {e including} its
    embedded checksum field, sums to the all-ones value — the standard
    receiver-side check. *)
